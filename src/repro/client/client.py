"""Synchronous client for the repro database server.

A :class:`ReproClient` owns one TCP connection and speaks the
length-prefixed JSON protocol of :mod:`repro.server.protocol`. Server-
side errors come back as structured error frames and are re-raised
here as the same exception classes (:mod:`repro.errors`), so remote
code reads like in-process code::

    with ReproClient(host, port) as client:
        client.create_table(schema)
        with client.session("worker-0") as session:
            session.begin()
            session.insert("kv", {"k": 1, "v": "hello"})
            session.commit()        # returns once durable

**Retries.** A transient disconnect (server restart, dropped socket)
is retried transparently — reconnect with full-jitter backoff, replay
the frame — but only for verbs that are safe to repeat. ``commit`` is
one of them: every :meth:`ClientSession.commit` carries a
client-generated **commit token**, and the server's bounded commit
ledger resolves a replayed token against the recorded outcome instead
of re-running the transaction, closing the classic ack-lost ambiguity
window (exactly-once commits). Other in-transaction verbs are *not*
replayed: the server closed the session with the connection, so the
client raises :class:`~repro.errors.ServerDisconnected` and the caller
decides (the closed-loop driver opens a fresh session and carries on).

**Degradation.** A server shedding load answers with
:class:`~repro.errors.RetryAfterError` *before doing any work*; the
client honors the hint with jittered sleeps and retries (bounded by
``shed_retries``). Any call may carry a ``deadline`` (seconds of total
wall time including backoff); once spent, the retry loop raises
:class:`~repro.errors.DeadlineExceededError` instead of sleeping.
"""

from __future__ import annotations

import itertools
import random
import socket
import time
import uuid
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.schema import Schema
from ..errors import (CommitAmbiguousError, CrashedError,
                      DeadlineExceededError, ProtocolError,
                      RetryAfterError, ServerDisconnected)
from ..server.protocol import (MAX_FRAME_BYTES, FrameDecoder,
                               encode_frame, error_to_exception, request,
                               schema_from_wire, schema_to_wire,
                               unwire_value, wire_value)

__all__ = ["ReproClient", "ClientSession", "RETRYABLE_VERBS"]

#: Verbs safe to replay on a fresh connection after a transient
#: disconnect: they carry no per-connection session state and are
#: idempotent (or, like ``flush``/``recover``, converge to the same
#: state when repeated). ``commit`` joined the set when it grew
#: tokens — the server's commit ledger answers a replayed token from
#: its record, so the engine never sees the retry.
RETRYABLE_VERBS = frozenset(
    {"hello", "ping", "stats", "procedures", "schema",
     "flush", "checkpoint", "recover", "commit", "commit_status"})


class ReproClient:
    """One connection to a :class:`~repro.server.DatabaseServer`."""

    def __init__(self, host: str, port: int, *,
                 timeout: float = 30.0,
                 retries: int = 2,
                 retry_backoff_s: float = 0.05,
                 shed_retries: int = 16,
                 deadline_s: Optional[float] = None,
                 jitter_seed: Optional[int] = None,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        #: RetryAfterError (load-shed) answers honored before giving up.
        self.shed_retries = shed_retries
        #: Default per-call wall-clock budget (None = unbounded).
        self.deadline_s = deadline_s
        self.max_frame_bytes = max_frame_bytes
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder(max_frame_bytes=max_frame_bytes)
        self._pending: List[Dict[str, Any]] = []
        self._request_ids = iter(range(1, 2 ** 62))
        self._rng = random.Random(jitter_seed)
        #: Nonce naming this client lifetime in commit tokens.
        self._nonce = uuid.uuid4().hex[:16]
        self._commit_seq = itertools.count(1)
        #: Sockets opened over this client's lifetime (first connect
        #: included); a change across a call means it reconnected.
        self.reconnects = 0
        self.server_info: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def connect(self) -> Dict[str, Any]:
        """Connect (with retries) and handshake; returns the server's
        ``hello`` banner."""
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                self._open_socket()
                self.server_info = self.call("hello")
                return self.server_info
            except (ConnectionError, OSError, ServerDisconnected) as exc:
                last_error = exc
                self._drop_socket()
                if attempt < self.retries:
                    time.sleep(self._backoff(attempt))
        raise ServerDisconnected(
            f"could not connect to {self.host}:{self.port}: {last_error}")

    def _open_socket(self) -> None:
        self._drop_socket()
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = FrameDecoder(max_frame_bytes=self.max_frame_bytes)
        self._pending = []
        self.reconnects += 1

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def close(self) -> None:
        self._drop_socket()

    def __enter__(self) -> "ReproClient":
        if not self.connected:
            self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The wire
    # ------------------------------------------------------------------

    def call(self, verb: str, deadline: Optional[float] = None,
             **args: Any) -> Any:
        """Send one request and wait for its response; server errors
        re-raise as their :mod:`repro.errors` class.

        ``deadline`` caps this call's total wall time (sends, retries,
        and backoff sleeps); past it the retry loop raises
        :class:`~repro.errors.DeadlineExceededError` instead of
        sleeping again. Defaults to the client-wide ``deadline_s``.
        """
        retryable = verb in RETRYABLE_VERBS
        if deadline is None:
            deadline = self.deadline_s
        start = time.monotonic()
        attempt = 0             # disconnect retries spent
        sheds = 0               # RetryAfterError answers honored
        while True:
            if self._sock is None:
                # Reconnecting before anything was sent is always safe,
                # even for non-retryable verbs.
                self._open_socket()
            request_id = next(self._request_ids)
            frame = encode_frame(request(request_id, verb, **args),
                                 max_frame_bytes=self.max_frame_bytes)
            try:
                self._sock.sendall(frame)
                payload = self._read_frame()
                # A response for an older request id is the echo of a
                # duplicated frame (fault injection); skip to ours.
                while payload.get("id") is not None \
                        and payload.get("id") != request_id:
                    payload = self._read_frame()
            except (ConnectionError, OSError) as exc:
                self._drop_socket()
                if not retryable or attempt >= self.retries:
                    raise ServerDisconnected(
                        f"connection to {self.host}:{self.port} lost "
                        f"during {verb!r}: {exc}") from None
                self._retry_sleep(self._backoff(attempt), start,
                                  deadline, verb, exc)
                attempt += 1
                continue
            try:
                return self._unpack(payload, request_id, verb)
            except RetryAfterError as exc:
                # The server shed the request *before doing any work*,
                # so repeating it is safe for every verb. Full jitter
                # around the server's hint spreads the retry herd.
                if sheds >= self.shed_retries:
                    raise
                self._retry_sleep(
                    self._rng.uniform(0, exc.retry_after_s * 2),
                    start, deadline, verb, exc)
                sheds += 1

    def _backoff(self, attempt: int) -> float:
        """Full-jitter exponential backoff: uniform over [0, cap) so
        simultaneous retriers decorrelate instead of thundering back
        in lockstep."""
        return self._rng.uniform(0, self.retry_backoff_s * 2 ** attempt)

    def _retry_sleep(self, seconds: float, start: float,
                     deadline: Optional[float], verb: str,
                     cause: Exception) -> None:
        """Sleep before a retry — unless that would overrun the call's
        deadline, in which case give up now."""
        if deadline is not None:
            remaining = deadline - (time.monotonic() - start)
            if remaining <= seconds:
                raise DeadlineExceededError(
                    f"{verb!r} exceeded its {deadline:g}s deadline: "
                    f"{cause}") from cause
        time.sleep(seconds)

    def _read_frame(self) -> Dict[str, Any]:
        while True:
            if self._pending:
                return self._pending.pop(0)
            data = self._sock.recv(65536)
            try:
                if not data:
                    self._decoder.eof()  # raises on a truncated frame
                    raise ConnectionError(
                        "server closed the connection")
                self._pending.extend(self._decoder.feed(data))
            except ProtocolError as exc:
                # A corrupt byte stream cannot be resynchronized; treat
                # it as a dead connection so the retry machinery (and
                # commit tokens) take over.
                raise ConnectionError(
                    f"unrecoverable byte stream: {exc}") from None

    @staticmethod
    def _unpack(payload: Dict[str, Any], request_id: int,
                verb: str) -> Any:
        if payload.get("ok"):
            if payload.get("id") != request_id:
                raise ProtocolError(
                    f"response id {payload.get('id')!r} does not match "
                    f"request id {request_id}")
            return payload.get("result")
        raise error_to_exception(payload.get("error"))

    # ------------------------------------------------------------------
    # Convenience surface
    # ------------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def create_table(self, schema: Schema) -> None:
        self.call("create_table", schema=schema_to_wire(schema))

    def schema(self, table: str) -> Schema:
        return schema_from_wire(self.call("schema", table=table)["schema"])

    def procedures(self) -> List[str]:
        return list(self.call("procedures")["procedures"])

    def session(self, name: str = "") -> "ClientSession":
        result = self.call("open_session", name=name)
        return ClientSession(self, result["session"], result["name"])

    def flush(self) -> int:
        return self.call("flush")["flushed"]

    def checkpoint(self) -> None:
        self.call("checkpoint")

    def crash(self) -> Dict[str, Any]:
        """Simulated power failure; returns how many logically-
        committed transactions it caught before their durable point."""
        return self.call("crash")

    def recover(self) -> float:
        return self.call("recover")["seconds"]

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def commit_token(self) -> str:
        """A fresh commit token (``"<nonce>:<seq>"``): unique per
        commit attempt *across reconnects* of this client."""
        return f"{self._nonce}:{next(self._commit_seq)}"

    def commit_status(self, token: str,
                      deadline: Optional[float] = None
                      ) -> Dict[str, Any]:
        """Ask the server's commit ledger about a token's fate:
        ``pending`` / ``durable`` / ``failed`` / ``unknown`` /
        ``forgotten``."""
        return self.call("commit_status", deadline=deadline,
                         token=token)

    def shutdown_server(self) -> None:
        self.call("shutdown")


class ClientSession:
    """A remote session: the same begin/op/commit/abort lifecycle as
    :class:`repro.core.session.Session`, one round trip per verb."""

    def __init__(self, client: ReproClient, session_id: int,
                 name: str) -> None:
        self.client = client
        self.session_id = session_id
        self.name = name
        self._closed = False

    def _call(self, verb: str, **args: Any) -> Any:
        return self.client.call(verb, session=self.session_id, **args)

    # -- lifecycle ------------------------------------------------------

    def begin(self, partition: int = 0) -> int:
        return self._call("begin", partition=partition)["txn"]

    def commit(self, deadline: Optional[float] = None,
               token: Optional[str] = None) -> int:
        """Commit; returns once the transaction is *durable* (its
        group-commit batch flushed).

        Exactly-once: the request carries a commit token, so a commit
        replayed across a reconnect resolves against the server's
        ledger instead of re-running. If the replay lands on a fresh
        connection whose session died with the old one, the token's
        recorded fate decides the answer: never recorded → the commit
        certainly never ran (:class:`~repro.errors.ServerDisconnected`,
        safe to re-run the transaction); recorded-but-evicted →
        :class:`~repro.errors.CommitAmbiguousError` (reconcile from
        data).

        Pass ``token`` (from :meth:`ReproClient.commit_token`) to keep
        a handle on the commit's fate — e.g. for a later
        ``commit_status`` reconciliation, as the chaos oracle does.
        """
        if token is None:
            token = self.client.commit_token()
        reconnects = self.client.reconnects
        try:
            return self.client.call("commit", deadline=deadline,
                                    session=self.session_id,
                                    token=token)["txn"]
        except ProtocolError as exc:
            if self.client.reconnects == reconnects:
                raise           # a real protocol bug, not a replay
            return self._resolve_token(token, exc, deadline)

    def _resolve_token(self, token: str, cause: Exception,
                       deadline: Optional[float]) -> int:
        """A replayed commit hit a connection with no session: consult
        the ledger (``commit_status``) for the token's fate."""
        while True:
            status = self.client.commit_status(token, deadline=deadline)
            fate = status.get("status")
            if fate != "pending":
                break
            time.sleep(self.client.retry_backoff_s)
        if fate == "durable":
            return status["result"]["txn"]
        if fate == "failed":
            raise CrashedError(
                f"commit not durable: {status.get('reason')}") from cause
        if fate == "unknown":
            raise ServerDisconnected(
                "connection lost before the commit reached the server "
                "(transaction was not applied)") from cause
        raise CommitAmbiguousError(
            f"commit {token} may or may not have been applied: "
            f"{status.get('reason')}") from cause

    def abort(self) -> int:
        return self._call("abort")["txn"]

    def call(self, name: str, *args: Any, partition: int = 0) -> Any:
        """One-shot: run the registered stored procedure ``name`` as a
        single transaction on ``partition``."""
        result = self._call("call", name=name,
                            args=[wire_value(arg) for arg in args],
                            partition=partition)
        return unwire_value(result["result"])

    def close(self) -> None:
        if self._closed or not self.client.connected:
            self._closed = True
            return
        try:
            self._call("close_session")
        except ServerDisconnected:
            pass
        self._closed = True

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- table operations (inside the active transaction) ---------------

    def insert(self, table: str, values: Dict[str, Any]) -> None:
        self._call("insert", table=table, values=wire_value(values))

    def update(self, table: str, key: Any,
               changes: Dict[str, Any]) -> None:
        self._call("update", table=table, key=wire_value(key),
                   changes=wire_value(changes))

    def delete(self, table: str, key: Any) -> None:
        self._call("delete", table=table, key=wire_value(key))

    def get(self, table: str, key: Any) -> Optional[Dict[str, Any]]:
        return unwire_value(
            self._call("get", table=table, key=wire_value(key))["row"])

    def get_secondary(self, table: str, index: str,
                      key: Any) -> List[Any]:
        return unwire_value(self._call(
            "get_secondary", table=table, index=index,
            key=wire_value(key))["keys"])

    def scan(self, table: str, lo: Any = None, hi: Any = None
             ) -> List[Tuple[Any, Dict[str, Any]]]:
        rows = self._call("scan", table=table, lo=wire_value(lo),
                          hi=wire_value(hi))["rows"]
        return [(unwire_value(key), unwire_value(row))
                for key, row in rows]
