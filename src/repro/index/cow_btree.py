"""Append-only copy-on-write B+tree (LMDB-style [16, 36, 56]).

This is the structure behind the CoW engines' *current* and *dirty*
directories (Section 3.2). Committed nodes are immutable; a mutation
copies the path from the affected leaf up to the root into the dirty
version, and the two versions share the rest of the tree. Committing
atomically installs the dirty root as the new current root (the engine
persists the newly created nodes first, then flips the master record);
aborting discards the dirty version. Old node versions replaced during
an epoch are garbage collected when the epoch commits.

Unlike the STX tree there is no leaf chain — versions share subtrees,
so scans walk the tree (as LMDB does).
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right
from typing import Any, Callable, Iterator, List, Optional, Tuple

from .cost import IndexCostModel, NullCostModel
from .stx_btree import ENTRY_SIZE


def _value_size(value: Any) -> int:
    """Accounted bytes of a leaf value: inlined tuple images carry
    their full size, pointers and other scalars one word."""
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, frozenset):
        return 8 * max(len(value), 1)
    return 8


class CoWNode:
    """One node of the copy-on-write tree. Public so that engines can
    serialize committed nodes to pages."""

    __slots__ = ("node_id", "is_leaf", "keys", "values", "children",
                 "epoch")

    def __init__(self, node_id: int, is_leaf: bool, epoch: int) -> None:
        self.node_id = node_id
        self.is_leaf = is_leaf
        self.keys: List[Any] = []
        self.values: List[Any] = []          # leaf only
        self.children: List["CoWNode"] = []  # internal only
        self.epoch = epoch


class CoWBTree:
    """Copy-on-write B+tree with explicit batch (epoch) lifecycle.

    Typical engine usage::

        tree.begin_batch()
        tree.put(key, value)          # copies the leaf-to-root path
        ...
        tree.commit(persist=callback) # callback persists created nodes
    """

    def __init__(self, node_size: int = 4096,
                 cost_model: Optional[IndexCostModel] = None,
                 leaf_fanout: Optional[int] = None) -> None:
        if node_size < 4 * ENTRY_SIZE:
            raise ValueError(
                f"node_size {node_size} too small; need >= {4 * ENTRY_SIZE}")
        self.node_size = node_size
        self.fanout = node_size // ENTRY_SIZE
        # Leaves that inline tuple data hold fewer entries per page
        # than branch nodes holding (key, child) pairs.
        self.leaf_fanout = leaf_fanout if leaf_fanout is not None \
            else self.fanout
        if self.leaf_fanout < 2:
            raise ValueError("leaf_fanout must be >= 2")
        self._cost = cost_model if cost_model is not None else NullCostModel()
        self._ids = itertools.count(1)
        self._epoch = 0
        root = self._new_node(is_leaf=True)
        self._current_root = root
        self._dirty_root = root
        self._in_batch = False
        self._created: List[CoWNode] = []
        self._replaced: List[CoWNode] = []
        self._size_current = 0
        self._size_dirty = 0

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------

    def _new_node(self, is_leaf: bool) -> CoWNode:
        node = CoWNode(next(self._ids), is_leaf, self._epoch)
        self._cost.node_allocated(node.node_id, self.node_size)
        self._cost.node_written(node.node_id, self.node_size)
        return node

    def _modifiable(self, node: CoWNode) -> CoWNode:
        """Return a copy of ``node`` owned by the current epoch (or
        ``node`` itself if it was created this epoch)."""
        if node.epoch == self._epoch:
            self._cost.node_probed(node.node_id, self.node_size)
            return node
        # Copying reads the whole node's contents.
        self._cost.node_read(node.node_id, self.node_size)
        copy = self._new_node(node.is_leaf)
        copy.keys = list(node.keys)
        copy.values = list(node.values)
        copy.children = list(node.children)
        self._created.append(copy)
        self._replaced.append(node)
        return copy

    # ------------------------------------------------------------------
    # Batch (epoch) lifecycle
    # ------------------------------------------------------------------

    @property
    def in_batch(self) -> bool:
        return self._in_batch

    def begin_batch(self) -> None:
        """Open a mutation epoch over the dirty directory."""
        if self._in_batch:
            return
        self._in_batch = True
        self._epoch += 1
        self._created = []
        self._replaced = []

    def commit(self, persist: Optional[Callable[[List[CoWNode], CoWNode],
                                                None]] = None) -> None:
        """Commit the dirty version.

        ``persist(created_nodes, new_root)`` is invoked *before* the
        flip so the engine can durably write the new nodes and only
        then atomically update its master record.
        """
        if not self._in_batch:
            return
        if persist is not None:
            persist(self._created, self._dirty_root)
        # Nodes replaced by this epoch belonged only to the previous
        # version; with the flip they become garbage (the paper GCs
        # them asynchronously — here they are reclaimed at commit).
        for node in self._replaced:
            self._cost.node_freed(node.node_id)
        self._current_root = self._dirty_root
        self._size_current = self._size_dirty
        self._created = []
        self._replaced = []
        self._in_batch = False

    def abort(self) -> None:
        """Discard the dirty version (uncommitted changes)."""
        if not self._in_batch:
            return
        for node in self._created:
            self._cost.node_freed(node.node_id)
        self._dirty_root = self._current_root
        self._size_dirty = self._size_current
        self._created = []
        self._replaced = []
        self._in_batch = False

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _root_for(self, dirty: bool) -> CoWNode:
        return self._dirty_root if dirty else self._current_root

    def get(self, key: Any, default: Any = None, dirty: bool = True) -> Any:
        """Look up ``key`` in the dirty (default) or current version."""
        node = self._root_for(dirty)
        self._cost.node_probed(node.node_id, self.node_size)
        while not node.is_leaf:
            index = bisect_right(node.keys, key)
            node = node.children[index]
            self._cost.node_probed(node.node_id, self.node_size)
        index = bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            value = node.values[index]
            # Reading an inlined tuple touches its bytes in the leaf.
            self._cost.node_read(node.node_id, _value_size(value))
            return value
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __len__(self) -> int:
        return self._size_dirty

    def size(self, dirty: bool = True) -> int:
        return self._size_dirty if dirty else self._size_current

    def items(self, lo: Any = None, hi: Any = None,
              dirty: bool = True) -> Iterator[Tuple[Any, Any]]:
        """In-order (key, value) pairs with ``lo <= key < hi``."""
        stack: List[Tuple[CoWNode, int]] = [(self._root_for(dirty), 0)]
        while stack:
            node, index = stack.pop()
            if index == 0:
                self._cost.node_read(node.node_id, self.node_size)
            if node.is_leaf:
                start = 0 if lo is None else bisect_left(node.keys, lo)
                for position in range(start, len(node.keys)):
                    key = node.keys[position]
                    if hi is not None and key >= hi:
                        return
                    yield key, node.values[position]
                continue
            if lo is not None and index == 0:
                index = bisect_right(node.keys, lo)
            if index < len(node.children):
                stack.append((node, index + 1))
                stack.append((node.children[index], 0))

    # ------------------------------------------------------------------
    # Mutations (require an open batch)
    # ------------------------------------------------------------------

    def _require_batch(self) -> None:
        if not self._in_batch:
            raise RuntimeError(
                "CoWBTree mutations require begin_batch() first")

    def put(self, key: Any, value: Any) -> bool:
        """Upsert into the dirty version; True if the key was new."""
        self._require_batch()
        self._dirty_root = self._modifiable(self._dirty_root)
        node = self._dirty_root
        path: List[Tuple[CoWNode, int]] = []
        while not node.is_leaf:
            index = bisect_right(node.keys, key)
            child = self._modifiable(node.children[index])
            node.children[index] = child
            path.append((node, index))
            node = child
        index = bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            node.values[index] = value
            self._cost.node_written(node.node_id, self.node_size)
            return False
        node.keys.insert(index, key)
        node.values.insert(index, value)
        self._cost.node_written(node.node_id, self.node_size)
        self._size_dirty += 1
        while len(node.keys) > (self.leaf_fanout if node.is_leaf
                                else self.fanout):
            sibling, separator = self._split(node)
            if path:
                parent, child_index = path.pop()
                parent.keys.insert(child_index, separator)
                parent.children.insert(child_index + 1, sibling)
                self._cost.node_written(parent.node_id, self.node_size)
                node = parent
            else:
                new_root = self._new_node(is_leaf=False)
                new_root.keys = [separator]
                new_root.children = [node, sibling]
                self._created.append(new_root)
                self._dirty_root = new_root
                break
        return True

    def _split(self, node: CoWNode) -> Tuple[CoWNode, Any]:
        sibling = self._new_node(node.is_leaf)
        self._created.append(sibling)
        middle = len(node.keys) // 2
        if node.is_leaf:
            sibling.keys = node.keys[middle:]
            sibling.values = node.values[middle:]
            del node.keys[middle:]
            del node.values[middle:]
            separator = sibling.keys[0]
        else:
            separator = node.keys[middle]
            sibling.keys = node.keys[middle + 1:]
            sibling.children = node.children[middle + 1:]
            del node.keys[middle:]
            del node.children[middle + 1:]
        self._cost.node_written(node.node_id, self.node_size)
        return sibling, separator

    def delete(self, key: Any) -> bool:
        """Delete from the dirty version; True if the key existed.

        Like LMDB, underfull nodes are tolerated (no merge); only an
        empty root chain is collapsed.
        """
        self._require_batch()
        self._dirty_root = self._modifiable(self._dirty_root)
        node = self._dirty_root
        path: List[Tuple[CoWNode, int]] = []
        while not node.is_leaf:
            index = bisect_right(node.keys, key)
            child = self._modifiable(node.children[index])
            node.children[index] = child
            path.append((node, index))
            node = child
        index = bisect_left(node.keys, key)
        if index >= len(node.keys) or node.keys[index] != key:
            return False
        del node.keys[index]
        del node.values[index]
        self._cost.node_written(node.node_id, self.node_size)
        self._size_dirty -= 1
        # Collapse empty leaves (and any internals emptied as a result)
        # and single-child roots.
        while path:
            empty = (not node.keys) if node.is_leaf else (not node.children)
            if not empty:
                break
            parent, child_index = path.pop()
            del parent.children[child_index]
            if parent.keys:
                del parent.keys[max(child_index - 1, 0)]
            self._cost.node_written(parent.node_id, self.node_size)
            node = parent
        root = self._dirty_root
        while not root.is_leaf and len(root.children) == 1:
            root = root.children[0]
        self._dirty_root = root
        return True

    # ------------------------------------------------------------------
    # Engine integration
    # ------------------------------------------------------------------

    @property
    def current_root(self) -> CoWNode:
        return self._current_root

    @property
    def dirty_root(self) -> CoWNode:
        return self._dirty_root

    def created_this_epoch(self) -> List[CoWNode]:
        return list(self._created)

    def replaced_this_epoch(self) -> List[CoWNode]:
        """Nodes whose old versions this epoch superseded (their
        durable pages become recyclable once the epoch commits)."""
        return list(self._replaced)

    def materialize_node(self, is_leaf: bool) -> CoWNode:
        """Allocate a node outside any epoch (used when reconstructing
        a committed directory from durable pages)."""
        return self._new_node(is_leaf)

    def install_recovered_root(self, root: CoWNode, size: int) -> None:
        """Install a root graph reconstructed from durable storage
        (used by the CoW engine after a restart)."""
        self._current_root = root
        self._dirty_root = root
        self._size_current = size
        self._size_dirty = size
        self._in_batch = False
        self._created = []
        self._replaced = []

    def node_count(self, dirty: bool = True) -> int:
        seen = set()
        stack = [self._root_for(dirty)]
        while stack:
            node = stack.pop()
            if node.node_id in seen:
                continue
            seen.add(node.node_id)
            if not node.is_leaf:
                stack.extend(node.children)
        return len(seen)

    def shared_node_count(self) -> int:
        """Nodes shared between the current and dirty versions — the
        space saving of shadow paging over full directory copies."""
        def reachable(root: CoWNode) -> set:
            seen = set()
            stack = [root]
            while stack:
                node = stack.pop()
                if id(node) in seen:
                    continue
                seen.add(id(node))
                if not node.is_leaf:
                    stack.extend(node.children)
            return seen

        return len(reachable(self._current_root)
                   & reachable(self._dirty_root))

    def check_invariants(self, dirty: bool = True) -> None:
        """Validate ordering and reachability; raises AssertionError."""
        count = 0

        def visit(node: CoWNode, lo: Any, hi: Any) -> None:
            nonlocal count
            assert node.keys == sorted(node.keys), "keys out of order"
            for key in node.keys:
                if lo is not None:
                    assert key >= lo
                if hi is not None:
                    assert key < hi
            if node.is_leaf:
                assert len(node.keys) == len(node.values)
                count += len(node.keys)
                return
            assert len(node.children) == len(node.keys) + 1
            bounds = [lo, *node.keys, hi]
            for child, (child_lo, child_hi) in zip(
                    node.children, zip(bounds[:-1], bounds[1:])):
                visit(child, child_lo, child_hi)

        visit(self._root_for(dirty), None, None)
        assert count == self.size(dirty)
