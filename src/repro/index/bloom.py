"""Bloom filter [12] for the log-structured engines.

The Log engine constructs a Bloom filter for each SSTable (and the
NVM-Log engine for each immutable MemTable) "to quickly determine at
runtime whether it contains entries associated with a tuple to avoid
unnecessary index look-ups" (Section 3.3).
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable


class BloomFilter:
    """Fixed-size Bloom filter over hashable keys.

    ``bits_per_key`` and ``num_hashes`` default to the common 10/3
    configuration (~1% false-positive rate at design capacity).
    """

    def __init__(self, expected_keys: int, bits_per_key: int = 10,
                 num_hashes: int = 3) -> None:
        if expected_keys < 0:
            raise ValueError("expected_keys must be non-negative")
        if bits_per_key < 1 or num_hashes < 1:
            raise ValueError("bits_per_key and num_hashes must be >= 1")
        self.num_bits = max(8, expected_keys * bits_per_key)
        self.num_hashes = num_hashes
        self._bits = bytearray((self.num_bits + 7) // 8)
        self._count = 0

    @classmethod
    def build(cls, keys: Iterable[Any], bits_per_key: int = 10,
              num_hashes: int = 3) -> "BloomFilter":
        """Construct a filter sized for (and containing) ``keys``."""
        materialized = list(keys)
        bloom = cls(len(materialized), bits_per_key, num_hashes)
        for key in materialized:
            bloom.add(key)
        return bloom

    def _positions(self, key: Any) -> Iterable[int]:
        digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
        # Kirsch-Mitzenmacher double hashing from one digest.
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: Any) -> None:
        """Insert ``key``."""
        for position in self._positions(key):
            self._bits[position >> 3] |= 1 << (position & 7)
        self._count += 1

    def might_contain(self, key: Any) -> bool:
        """False means definitely absent; True means possibly present."""
        return all(self._bits[position >> 3] & (1 << (position & 7))
                   for position in self._positions(key))

    def __contains__(self, key: Any) -> bool:
        return self.might_contain(key)

    @property
    def size_bytes(self) -> int:
        return len(self._bits)

    @property
    def count(self) -> int:
        return self._count

    def fill_ratio(self) -> float:
        """Fraction of set bits (diagnostic for saturation)."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.num_bits
