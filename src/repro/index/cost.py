"""Cost models charging index node accesses to the emulated platform.

The index structures are pure Python, but every node they allocate,
read, or write corresponds to NVM traffic on the emulated platform —
that is what makes index maintenance show up in the Fig. 13 execution
breakdown and in the Fig. 9-11 load/store counts. A cost model adapter
decouples the tree algorithms from the accounting:

* :class:`NullCostModel` — free accesses (unit tests, analysis code).
* :class:`NVMIndexCostModel` — nodes live in accounting allocations on
  the emulated NVM; reads/writes run through the CPU cache model, and
  ``sync_node`` invokes the allocator's durable sync primitive (used by
  the non-volatile B+tree).
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from ..nvm.allocator import Allocation, NVMAllocator
from ..nvm.memory import NVMMemory


#: Bytes a search examines inside one node (binary search touches a
#: handful of cache lines, not the whole node).
PROBE_BYTES = 512


class IndexCostModel(Protocol):
    """What an index needs from the platform to account its accesses."""

    def node_allocated(self, node_id: int, size: int) -> None: ...

    def node_freed(self, node_id: int) -> None: ...

    def node_probed(self, node_id: int, size: int) -> None:
        """A search descended through this node (partial read)."""

    def node_read(self, node_id: int, size: int) -> None:
        """The node's full contents were read (copy / scan)."""

    def node_written(self, node_id: int, size: int) -> None: ...

    def sync_node(self, node_id: int, offset: int, size: int) -> None: ...


class NullCostModel:
    """A cost model that charges nothing (for tests and analysis)."""

    def node_allocated(self, node_id: int, size: int) -> None:
        pass

    def node_freed(self, node_id: int) -> None:
        pass

    def node_probed(self, node_id: int, size: int) -> None:
        pass

    def node_read(self, node_id: int, size: int) -> None:
        pass

    def node_written(self, node_id: int, size: int) -> None:
        pass

    def sync_node(self, node_id: int, offset: int, size: int) -> None:
        pass


class NVMIndexCostModel:
    """Charges index node traffic to the emulated NVM platform.

    Each node is backed by an accounting allocation tagged ``tag`` (so
    index bytes show up in the Fig. 14 footprint); reads and writes are
    charged through the CPU cache model at the node's address.
    """

    def __init__(self, allocator: NVMAllocator, memory: NVMMemory,
                 tag: str = "index",
                 persistent: bool = False) -> None:
        self._allocator = allocator
        self._memory = memory
        self._tag = tag
        self._persistent = persistent
        self._allocations: Dict[int, Allocation] = {}

    def node_allocated(self, node_id: int, size: int) -> None:
        allocation = self._allocator.malloc(size, tag=self._tag,
                                            kind="object")
        if self._persistent:
            self._allocator.persist(allocation)
        self._allocations[node_id] = allocation
        self._memory.touch_write(allocation.addr, size)

    def node_freed(self, node_id: int) -> None:
        allocation = self._allocations.pop(node_id, None)
        if allocation is not None:
            self._allocator.free(allocation)

    def node_probed(self, node_id: int, size: int) -> None:
        allocation = self._allocations.get(node_id)
        if allocation is not None:
            self._memory.touch_read(
                allocation.addr,
                min(size, allocation.size, PROBE_BYTES))

    def node_read(self, node_id: int, size: int) -> None:
        allocation = self._allocations.get(node_id)
        if allocation is not None:
            self._memory.touch_read(allocation.addr,
                                    min(size, allocation.size))

    def node_written(self, node_id: int, size: int) -> None:
        allocation = self._allocations.get(node_id)
        if allocation is not None:
            self._memory.touch_write(allocation.addr,
                                     min(size, allocation.size))

    def sync_node(self, node_id: int, offset: int, size: int) -> None:
        allocation = self._allocations.get(node_id)
        if allocation is not None:
            end = min(offset + size, allocation.size)
            if end > offset:
                self._allocator.sync(allocation, offset, end - offset)

    def allocation_for(self, node_id: int) -> Optional[Allocation]:
        return self._allocations.get(node_id)

    def total_bytes(self) -> int:
        return sum(a.size for a in self._allocations.values())

    def drop_all(self) -> None:
        """Free every node allocation (volatile index lost in a crash)."""
        for allocation in list(self._allocations.values()):
            if self._allocator.resolve_optional(allocation.addr) is allocation:
                self._allocator.free(allocation)
        self._allocations.clear()
