"""Non-volatile B+tree (Section 4.1, references [49, 62]).

The paper modifies the STX B+tree so that "all operations that alter
the index's internal structure are atomic": when adding an entry to a
node, the entry is *appended* to the node's entry list (an atomic
durable write of one entry) rather than shifted into sorted position,
because a sorted insert dirties cache lines that cannot be written back
atomically. The result is an index that "the engine can safely access
immediately after the system restarts as it is guaranteed to be in a
consistent state" — no rebuild during recovery.

The simulator models this as the same B+tree algorithm plus, on every
mutation, a durable sync of the touched entry (one ``ENTRY_SIZE`` range
per modified node) through the cost model, and persistent (crash-
surviving) node allocations. The extra syncs are the price; skipping
index rebuild at recovery is the payoff.
"""

from __future__ import annotations

from typing import Any, Optional

from .cost import IndexCostModel
from .stx_btree import ENTRY_SIZE, STXBTree, _Node


class NVBTree(STXBTree):
    """B+tree whose mutations are individually made durable.

    Use with a persistent :class:`NVMIndexCostModel` so node
    allocations survive a crash; mutations then remain visible after
    restart without any recovery action.
    """

    def __init__(self, node_size: int = 512,
                 cost_model: Optional[IndexCostModel] = None) -> None:
        super().__init__(node_size=node_size, cost_model=cost_model)

    def _write(self, node: _Node) -> None:
        super()._write(node)
        # Atomic durable append of the modified entry: flush + fence of
        # the entry's cache lines (Section 4.1). One entry per write —
        # the append-only node layout guarantees no other entry moves.
        self._cost.sync_node(node.node_id, 0, ENTRY_SIZE)

    def _new_node(self, is_leaf: bool) -> _Node:
        node = super()._new_node(is_leaf)
        # A freshly allocated node must be durably linked before use.
        self._cost.sync_node(node.node_id, 0, ENTRY_SIZE)
        return node

    def contains_after_restart(self, key: Any) -> bool:
        """Alias of ``in`` that documents the post-restart guarantee."""
        return key in self
