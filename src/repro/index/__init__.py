"""Index structures used by the storage engines.

* :class:`~repro.index.stx_btree.STXBTree` — the volatile B+tree the
  traditional engines use (STX B+tree library [10]), with a
  configurable node size (512 B default, swept in Fig. 15).
* :class:`~repro.index.nv_btree.NVBTree` — the non-volatile B+tree the
  NVM-aware engines use [49, 62]: every structural modification is made
  durable with the allocator's sync primitive, so the index is
  consistent immediately after restart and never needs rebuilding.
* :class:`~repro.index.cow_btree.CoWBTree` — the LMDB-style append-only
  copy-on-write B+tree [16, 36, 56] behind the CoW engines' current and
  dirty directories.
* :class:`~repro.index.bloom.BloomFilter` — per-SSTable Bloom filters
  for the Log engines [12].
"""

from .bloom import BloomFilter
from .cost import IndexCostModel, NullCostModel, NVMIndexCostModel
from .cow_btree import CoWBTree
from .nv_btree import NVBTree
from .stx_btree import STXBTree

__all__ = [
    "BloomFilter",
    "CoWBTree",
    "IndexCostModel",
    "NVBTree",
    "NVMIndexCostModel",
    "NullCostModel",
    "STXBTree",
]
