"""A B+tree in the style of the STX B+tree library [10].

This is the index used by the in-place and log-structured engines for
primary and secondary indexes. The node size is configured in *bytes*
(512 B by default, as in Section 5) and translated into a fanout
assuming 16-byte entries (8-byte key + 8-byte pointer) — the Fig. 15
experiment sweeps this parameter.

Every node access is charged to an :class:`IndexCostModel`, which is
how index maintenance becomes NVM traffic on the emulated platform.
The structure itself is volatile: engines that keep it in DRAM-style
(non-persisted) allocations lose it on a crash and must rebuild it
during recovery, exactly as the paper's InP engine does (Section 3.1).
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right
from typing import Any, Iterator, List, Optional, Tuple

from .cost import IndexCostModel, NullCostModel

#: Accounted bytes per (key, pointer) entry in a node.
ENTRY_SIZE = 16


class _Node:
    __slots__ = ("node_id", "is_leaf", "keys", "values", "children",
                 "next_leaf")

    def __init__(self, node_id: int, is_leaf: bool) -> None:
        self.node_id = node_id
        self.is_leaf = is_leaf
        self.keys: List[Any] = []
        self.values: List[Any] = []        # leaf only
        self.children: List["_Node"] = []  # internal only
        self.next_leaf: Optional["_Node"] = None


class STXBTree:
    """B+tree with byte-sized nodes and cost-model accounting.

    Keys must be mutually comparable; values are opaque. ``put``
    upserts, ``insert`` raises on duplicates, ``delete`` rebalances.
    """

    def __init__(self, node_size: int = 512,
                 cost_model: Optional[IndexCostModel] = None) -> None:
        if node_size < 4 * ENTRY_SIZE:
            raise ValueError(
                f"node_size {node_size} too small; need >= {4 * ENTRY_SIZE}")
        self.node_size = node_size
        self.fanout = node_size // ENTRY_SIZE
        self._min_fill = self.fanout // 2
        self._cost = cost_model if cost_model is not None else NullCostModel()
        self._ids = itertools.count(1)
        self._root = self._new_node(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------

    def _new_node(self, is_leaf: bool) -> _Node:
        node = _Node(next(self._ids), is_leaf)
        self._cost.node_allocated(node.node_id, self.node_size)
        return node

    def _free_node(self, node: _Node) -> None:
        self._cost.node_freed(node.node_id)

    def _read(self, node: _Node) -> None:
        """Search descent through a node: a partial (probe) read."""
        self._cost.node_probed(node.node_id, self.node_size)

    def _write(self, node: _Node) -> None:
        self._cost.node_written(node.node_id, self.node_size)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        self._read(node)
        while not node.is_leaf:
            index = bisect_right(node.keys, key)
            node = node.children[index]
            self._read(node)
        return node

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value for ``key`` or ``default``."""
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def put(self, key: Any, value: Any) -> bool:
        """Insert or replace; returns True if the key was new."""
        return self._put(key, value, replace=True)

    def insert(self, key: Any, value: Any) -> None:
        """Insert; raises ``KeyError`` if the key exists."""
        if not self._put(key, value, replace=False):
            raise KeyError(f"duplicate key {key!r}")

    def _put(self, key: Any, value: Any, replace: bool) -> bool:
        path: List[Tuple[_Node, int]] = []
        node = self._root
        self._read(node)
        while not node.is_leaf:
            index = bisect_right(node.keys, key)
            path.append((node, index))
            node = node.children[index]
            self._read(node)
        index = bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            if not replace:
                return False
            node.values[index] = value
            self._write(node)
            return False
        node.keys.insert(index, key)
        node.values.insert(index, value)
        self._write(node)
        self._size += 1
        # Split upward while nodes overflow.
        while len(node.keys) > self.fanout:
            sibling, separator = self._split(node)
            if path:
                parent, child_index = path.pop()
                parent.keys.insert(child_index, separator)
                parent.children.insert(child_index + 1, sibling)
                self._write(parent)
                node = parent
            else:
                new_root = self._new_node(is_leaf=False)
                new_root.keys = [separator]
                new_root.children = [node, sibling]
                self._root = new_root
                self._write(new_root)
                break
        return True

    def _split(self, node: _Node) -> Tuple[_Node, Any]:
        """Split an overflowing node; returns (right sibling, separator)."""
        sibling = self._new_node(node.is_leaf)
        middle = len(node.keys) // 2
        if node.is_leaf:
            sibling.keys = node.keys[middle:]
            sibling.values = node.values[middle:]
            del node.keys[middle:]
            del node.values[middle:]
            sibling.next_leaf = node.next_leaf
            node.next_leaf = sibling
            separator = sibling.keys[0]
        else:
            separator = node.keys[middle]
            sibling.keys = node.keys[middle + 1:]
            sibling.children = node.children[middle + 1:]
            del node.keys[middle:]
            del node.children[middle + 1:]
        self._write(node)
        self._write(sibling)
        return sibling, separator

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, key: Any) -> bool:
        """Delete ``key``; returns True if it existed."""
        removed = self._delete(self._root, key)
        if removed:
            self._size -= 1
        root = self._root
        if not root.is_leaf and len(root.children) == 1:
            # Shrink the tree when the root holds a single child.
            self._root = root.children[0]
            self._free_node(root)
        return removed

    def _delete(self, node: _Node, key: Any) -> bool:
        self._read(node)
        if node.is_leaf:
            index = bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            del node.keys[index]
            del node.values[index]
            self._write(node)
            return True
        index = bisect_right(node.keys, key)
        child = node.children[index]
        removed = self._delete(child, key)
        if removed and self._underfull(child):
            self._rebalance(node, index)
        return removed

    def _underfull(self, node: _Node) -> bool:
        return len(node.keys) < self._min_fill

    def _rebalance(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        left = parent.children[index - 1] if index > 0 else None
        right = (parent.children[index + 1]
                 if index + 1 < len(parent.children) else None)
        if left is not None and len(left.keys) > self._min_fill:
            self._borrow_from_left(parent, index, left, child)
        elif right is not None and len(right.keys) > self._min_fill:
            self._borrow_from_right(parent, index, child, right)
        elif left is not None:
            self._merge(parent, index - 1, left, child)
        elif right is not None:
            self._merge(parent, index, child, right)

    def _borrow_from_left(self, parent: _Node, index: int,
                          left: _Node, child: _Node) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        self._write(parent)
        self._write(left)
        self._write(child)

    def _borrow_from_right(self, parent: _Node, index: int,
                           child: _Node, right: _Node) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        self._write(parent)
        self._write(right)
        self._write(child)

    def _merge(self, parent: _Node, left_index: int,
               left: _Node, right: _Node) -> None:
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[left_index]
        del parent.children[left_index + 1]
        self._write(parent)
        self._write(left)
        self._free_node(right)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def items(self, lo: Any = None, hi: Any = None
              ) -> Iterator[Tuple[Any, Any]]:
        """Yield (key, value) in key order for ``lo <= key < hi``."""
        if lo is None:
            node: Optional[_Node] = self._leftmost_leaf()
            start = 0
        else:
            node = self._find_leaf(lo)
            start = bisect_left(node.keys, lo)
        while node is not None:
            self._read(node)
            for index in range(start, len(node.keys)):
                key = node.keys[index]
                if hi is not None and key >= hi:
                    return
                yield key, node.values[index]
            node = node.next_leaf
            start = 0

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        self._read(node)
        while not node.is_leaf:
            node = node.children[0]
            self._read(node)
        return node

    def keys(self) -> Iterator[Any]:
        for key, __ in self.items():
            yield key

    def __iter__(self) -> Iterator[Any]:
        return self.keys()

    # ------------------------------------------------------------------
    # Introspection (used by tests and the Fig. 15 experiment)
    # ------------------------------------------------------------------

    def depth(self) -> int:
        """Number of levels from root to leaves."""
        node, levels = self._root, 1
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    def node_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def check_invariants(self) -> None:
        """Validate ordering, fill, linkage; raises AssertionError."""
        leaves: List[_Node] = []

        def visit(node: _Node, lo: Any, hi: Any, depth: int) -> int:
            assert node.keys == sorted(node.keys), "keys out of order"
            for key in node.keys:
                if lo is not None:
                    assert key >= lo, "key below subtree bound"
                if hi is not None:
                    assert key < hi, "key above subtree bound"
            if node.is_leaf:
                assert len(node.keys) == len(node.values)
                leaves.append(node)
                return depth
            assert len(node.children) == len(node.keys) + 1
            depths = set()
            bounds = [lo, *node.keys, hi]
            for child, (child_lo, child_hi) in zip(
                    node.children, zip(bounds[:-1], bounds[1:])):
                depths.add(visit(child, child_lo, child_hi, depth + 1))
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop()

        visit(self._root, None, None, 0)
        # Leaf chain must visit every leaf exactly once, left to right.
        chained = []
        node: Optional[_Node] = self._leftmost_leaf()
        while node is not None:
            chained.append(node)
            node = node.next_leaf
        assert chained == leaves, "leaf chain broken"
        assert sum(len(leaf.keys) for leaf in leaves) == self._size
