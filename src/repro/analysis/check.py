"""`repro check` — persistence-ordering smoke check per engine.

Runs a small YCSB workload (load + mixed read/update transactions +
a delete tail exercising slot reclamation) against each requested
engine with an :class:`~repro.analysis.ordering.OrderingChecker`
attached to every partition, then reports ordering violations,
redundant-flush lints, and NVM allocation leaks as JSON or text.

Exit codes: 0 = clean, 1 = ordering violations found, 2 = bad usage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..config import EngineConfig, LatencyProfile, PlatformConfig
from ..core.database import Database
from ..engines.base import ENGINE_NAMES, engine_names
from ..workloads.ycsb import YCSBConfig, YCSBWorkload
from .ordering import OrderingChecker, OrderingReport

__all__ = ["CheckOutcome", "attach_checkers", "check_engine",
           "run_check", "engine_requires_persisted_allocations"]

#: Engines checked by default: the paper's six architectures.
DEFAULT_ENGINES = list(ENGINE_NAMES.ALL)


def engine_requires_persisted_allocations(engine: Any) -> bool:
    """True when every live allocation of ``engine`` must be persisted
    (the ORD006 leak check applies). NVM-aware engines keep their
    storage in persistent pools; the hybrid engine intentionally keeps
    volatile DRAM-rebuilt structures, and the traditional engines treat
    NVM allocations as volatile heap (durability goes through the
    filesystem)."""
    return bool(engine.is_nvm_aware
                and getattr(engine, "pools_persistent", True)
                and getattr(engine, "memtable_persistent", True))


def attach_checkers(db: Database, *,
                    trace_cap: int = 128) -> List[OrderingChecker]:
    """Attach one :class:`OrderingChecker` per partition platform."""
    checkers = []
    for partition in db.partitions:
        checker = OrderingChecker(
            partition.platform,
            engine=db.engine_name,
            require_persisted_allocations=
            engine_requires_persisted_allocations(partition.engine),
            trace_cap=trace_cap)
        checker.attach()
        checkers.append(checker)
    return checkers


@dataclass
class CheckOutcome:
    """Merged result of checking one engine."""

    engine: str
    reports: List[OrderingReport]

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    @property
    def events(self) -> int:
        return sum(report.events for report in self.reports)

    @property
    def counts(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for report in self.reports:
            for code, count in report.counts.items():
                merged[code] = merged.get(code, 0) + count
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "ok": self.ok,
            "events": self.events,
            "counts": self.counts,
            "partitions": [report.to_dict() for report in self.reports],
        }


def check_engine(engine: str, *,
                 num_tuples: int = 200,
                 num_txns: int = 400,
                 deletes: int = 20,
                 mixture: str = "balanced",
                 skew: str = "low",
                 latency: Optional[LatencyProfile] = None,
                 seed: int = 31) -> CheckOutcome:
    """Run the YCSB ordering smoke for one engine."""
    platform_config = PlatformConfig(seed=seed)
    if engine == "hybrid-inp":
        platform_config = PlatformConfig(
            seed=seed, dram_capacity_bytes=32 * 1024 * 1024)
    db = Database(engine=engine, platform_config=platform_config,
                  latency=latency, engine_config=EngineConfig(),
                  seed=seed)
    checkers = attach_checkers(db)
    workload = YCSBWorkload(YCSBConfig(
        num_tuples=num_tuples, mixture=mixture, skew=skew, seed=seed))
    workload.load(db)
    workload.run(db, num_txns)
    # A delete tail exercises slot/varlen reclamation, whose state
    # bytes also carry durability obligations.
    for key in range(max(num_tuples - deletes, 0), num_tuples):
        db.delete(YCSBWorkload.TABLE, key)
    db.flush()
    reports = [checker.finalize() for checker in checkers]
    for checker in checkers:
        checker.detach()
    db.close()
    return CheckOutcome(engine=engine, reports=reports)


def run_check(engines: List[str], **kwargs: Any) -> List[CheckOutcome]:
    """Check several engines; unknown names raise ``ValueError``."""
    known = engine_names()
    unknown = [name for name in engines if name not in known]
    if unknown:
        raise ValueError(
            f"unknown engines: {', '.join(unknown)}; "
            f"choose from {', '.join(known)}")
    return [check_engine(engine, **kwargs) for engine in engines]
