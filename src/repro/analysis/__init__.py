"""Analysis utilities: the Table 3 cost model and table formatting."""

from .cost_model import CostModelParams, OperationCost, engine_cost
from .tables import format_table

__all__ = ["CostModelParams", "OperationCost", "engine_cost",
           "format_table"]
