"""Analysis utilities: the Table 3 cost model, table formatting, and
the persistence-ordering checker behind ``repro check``."""

from .cost_model import CostModelParams, OperationCost, engine_cost
from .ordering import (LINT_CODES, ORDERING_RULES, OrderingChecker,
                       OrderingReport, OrderingViolation)
from .tables import format_table

#: ``analysis.check`` pulls in the full database stack, which itself
#: imports this package (via ``obs.export``) — so its symbols are
#: re-exported lazily (PEP 562) instead of eagerly.
_CHECK_SYMBOLS = ("CheckOutcome", "attach_checkers", "check_engine",
                  "run_check", "engine_requires_persisted_allocations")


def __getattr__(name: str):
    if name in _CHECK_SYMBOLS:
        from . import check
        return getattr(check, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")

__all__ = ["CostModelParams", "OperationCost", "engine_cost",
           "format_table", "OrderingChecker", "OrderingReport",
           "OrderingViolation", "ORDERING_RULES", "LINT_CODES",
           "CheckOutcome", "attach_checkers", "check_engine",
           "run_check", "engine_requires_persisted_allocations"]
