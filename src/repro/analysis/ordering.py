"""Dynamic persistence-ordering checker (CLFLUSH/SFENCE protocol).

The paper's NVM engines are correct only if every durable-critical
store is flushed *and* fenced before the commit marker that makes it
reachable becomes visible (the Section 2.3 sync primitive). The fault
campaign samples executions for crash bugs; this checker validates the
ordering contract **exhaustively on every run** by observing the
platform's persistence primitives:

* :class:`~repro.nvm.memory.NVMMemory` reports stores, CLFLUSH/CLWB,
  SFENCE, sync, and commit-marker writes;
* :class:`~repro.nvm.allocator.NVMAllocator` reports allocation
  lifecycle (malloc / persist / free);
* :class:`~repro.engines.base.StorageEngine` reports transaction
  begin / commit / abort and group-commit durable points;
* :class:`~repro.fault.injector.FaultInjector` reports fault-point
  hits so traces carry crash-point markers.

Durability is tracked per cache line in *program order* with event
sequence numbers — evictions are chance, so a store only counts as
durably ordered once a flush issued **after** it was followed by a
fence. Sequence numbers (rather than a plain dirty/flushed/durable
state) make the model precise about false sharing: when two objects
share a line, a later store by one cannot retract the already-fenced
flush that covered the other's bytes. Rules:

========  ==============================================================
ORD001    commit marker published a range with an unflushed (dirty) line
ORD002    commit marker published a range flushed but not yet fenced
ORD003    txn reached its durable point with an unflushed store to a
          persisted allocation
ORD004    txn reached its durable point with a flushed-but-unfenced
          store to a persisted allocation
ORD005    redundant flush: line flushed twice with no intervening store
          (performance lint, reported separately)
ORD006    allocation left live but never persisted at finalize
          (NVM leak; checked only for engines with persistent pools)
========  ==============================================================

Hard checks (ORD001-ORD004) apply to **byte-backed** stores, whose
durability the simulator models exactly. Accounting-only object
regions (index nodes, MemTable entries) deliberately model a durable
sync of just the *touched entry* per mutation, so their stores count
toward line dirtiness and the trace but are not hard-checked.

Every violation carries the tail of the recent event trace
(``store``/``flush``/``sfence``/``sync``/``marker``/``fault_point``
tuples) — see ``docs/static-analysis.md`` for the trace format.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import deque
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Deque, Dict, List, Optional,
                    Tuple)

if TYPE_CHECKING:  # imported lazily: platform's import chain reaches
    from ..nvm.allocator import Allocation  # back into this package
    from ..nvm.platform import Platform

__all__ = ["OrderingChecker", "OrderingReport", "OrderingViolation",
           "ORDERING_RULES"]

#: Rule code -> one-line description (the rule catalogue).
ORDERING_RULES: Dict[str, str] = {
    "ORD001": "commit marker published an unflushed (dirty) range",
    "ORD002": "commit marker published a flushed-but-unfenced range",
    "ORD003": "unflushed store to a persisted allocation at the "
              "transaction's durable point",
    "ORD004": "flushed-but-unfenced store to a persisted allocation at "
              "the transaction's durable point",
    "ORD005": "redundant flush: line flushed twice with no intervening "
              "store (performance lint)",
    "ORD006": "allocation still live but never persisted at finalize "
              "(non-volatile memory leak)",
}

#: Codes reported as performance lints rather than hard violations.
LINT_CODES = frozenset({"ORD005"})

#: Bound on stored violation/lint examples per code (all occurrences
#: are still counted in :attr:`OrderingChecker.counts`).
MAX_EXAMPLES = 50


@dataclass(frozen=True)
class OrderingViolation:
    """One persistence-ordering finding."""

    code: str
    message: str
    addr: int
    txn_id: Optional[int] = None
    #: Tail of the recent event trace at detection time.
    trace: Tuple[Tuple[Any, ...], ...] = ()

    @property
    def is_lint(self) -> bool:
        return self.code in LINT_CODES

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "addr": self.addr,
            "txn_id": self.txn_id,
            "trace": [list(event) for event in self.trace],
        }

    def __str__(self) -> str:
        txn = f" txn={self.txn_id}" if self.txn_id is not None else ""
        return f"{self.code}{txn} addr={self.addr:#x}: {self.message}"


@dataclass
class OrderingReport:
    """JSON-ready summary of one checked run."""

    engine: Optional[str]
    events: int
    violations: List[OrderingViolation] = field(default_factory=list)
    lints: List[OrderingViolation] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "events": self.events,
            "ok": self.ok,
            "counts": dict(self.counts),
            "violations": [v.to_dict() for v in self.violations],
            "lints": [v.to_dict() for v in self.lints],
        }


class OrderingChecker:
    """Persistence-ordering observer for one emulated platform.

    Attach with :meth:`attach`; run a workload; read
    :attr:`violations` / :attr:`lints` or call :meth:`finalize` for
    the leak check and a full :class:`OrderingReport`.

    Per cache line the checker keeps three event sequence numbers:
    the last store (``_store_seq``), the last unfenced flush
    (``_flush_seq``), and the newest *fenced* flush
    (``_durable_seq``). A store at sequence ``s`` is durably ordered
    once ``_durable_seq[line] > s`` — i.e. some flush issued after
    the store has been fenced. Later stores to the same line (by the
    same or another object) never retract that.
    """

    def __init__(self, platform: Platform,
                 engine: Optional[str] = None,
                 require_persisted_allocations: bool = False,
                 trace_cap: int = 128,
                 keep_full_trace: bool = False) -> None:
        self._platform = platform
        self.engine = engine
        #: When True, :meth:`finalize` reports ORD006 for live
        #: allocations that were never persisted (NVM-aware engines
        #: whose pools must survive a restart).
        self.require_persisted_allocations = require_persisted_allocations
        self.line_size = platform.memory.line_size
        self.violations: List[OrderingViolation] = []
        self.lints: List[OrderingViolation] = []
        #: Total occurrences per rule code (examples are capped,
        #: counts are not).
        self.counts: Dict[str, int] = {}
        self.events = 0
        #: Full event trace (only when ``keep_full_trace``).
        self.trace: List[Tuple[Any, ...]] = []
        self._keep_full_trace = keep_full_trace
        self._recent: Deque[Tuple[Any, ...]] = deque(maxlen=trace_cap)
        # Per-line sequence numbers (see class docstring).
        self._store_seq: Dict[int, int] = {}
        self._flush_seq: Dict[int, int] = {}
        self._durable_seq: Dict[int, int] = {}
        # Per-line store intervals (addr, end, seq) since the line's
        # last covering fence — lets the commit-marker check test
        # whether a store actually *intersects* the published range,
        # so a neighbour object dirtying a shared boundary line cannot
        # produce a false ORD001/ORD002. Entries subsumed by a newer
        # covering store, or older than a fenced flush, are pruned.
        self._line_stores: Dict[int, List[Tuple[int, int, int]]] = {}
        # Live allocations, addr-sorted for covering-range lookup.
        self._alloc_starts: List[int] = []
        self._allocs: Dict[int, Allocation] = {}
        # Txn attribution: current open txn and, per txn, the lines it
        # byte-stored into live allocations:
        # line -> (allocation, store sequence).
        self._current_txn: Optional[int] = None
        self._txn_written: Dict[int, Dict[int, Tuple[Allocation, int]]] \
            = {}
        self._attached = False

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(self) -> "OrderingChecker":
        """Install the checker on the platform's hook points."""
        platform = self._platform
        platform.memory.observer = self
        platform.allocator.observer = self
        platform.faults.observer = self
        platform.ordering = self
        self._attached = True
        return self

    def detach(self) -> None:
        platform = self._platform
        if platform.memory.observer is self:
            platform.memory.observer = None
        if platform.allocator.observer is self:
            platform.allocator.observer = None
        if platform.faults.observer is self:
            platform.faults.observer = None
        if platform.ordering is self:
            platform.ordering = None
        self._attached = False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _lines(self, addr: int, size: int) -> range:
        first = (addr // self.line_size) * self.line_size
        last = ((addr + max(size, 1) - 1)
                // self.line_size) * self.line_size
        return range(first, last + self.line_size, self.line_size)

    def _covering(self, addr: int) -> Optional[Allocation]:
        """The live allocation whose user region contains ``addr``."""
        index = bisect_right(self._alloc_starts, addr) - 1
        if index < 0:
            return None
        start = self._alloc_starts[index]
        allocation = self._allocs.get(start)
        if allocation is not None and addr < start + allocation.size:
            return allocation
        return None

    def _event(self, *payload: Any) -> None:
        self.events += 1
        self._recent.append(payload)
        if self._keep_full_trace:
            self.trace.append(payload)

    def _record(self, code: str, message: str, addr: int,
                txn_id: Optional[int] = None) -> None:
        self.counts[code] = self.counts.get(code, 0) + 1
        bucket = self.lints if code in LINT_CODES else self.violations
        if len(bucket) < MAX_EXAMPLES:
            bucket.append(OrderingViolation(
                code, message, addr, txn_id,
                trace=tuple(self._recent)))

    # ------------------------------------------------------------------
    # Memory observer callbacks
    # ------------------------------------------------------------------

    def on_store(self, addr: int, size: int, byte_backed: bool) -> None:
        self._event("store", addr, size,
                    "bytes" if byte_backed else "object")
        seq = self.events
        store_seq = self._store_seq
        end = addr + size
        for line in self._lines(addr, size):
            store_seq[line] = seq
            entries = self._line_stores.setdefault(line, [])
            if entries:
                entries[:] = [entry for entry in entries
                              if not (addr <= entry[0]
                                      and entry[1] <= end)]
            entries.append((addr, end, seq))
        if not byte_backed:
            return
        txn = self._current_txn
        if txn is None:
            return
        allocation = self._covering(addr)
        if allocation is None:
            return
        written = self._txn_written.setdefault(txn, {})
        for line in self._lines(addr, size):
            written[line] = (allocation, seq)

    def _flush_one(self, line: int, seq: int) -> None:
        last_store = self._store_seq.get(line, -1)
        if last_store < 0 and line not in self._durable_seq \
                and line not in self._flush_seq:
            # Never-written line inside a larger sync range —
            # harmless, not counted.
            return
        if last_store < self._flush_seq.get(line, -1) \
                or last_store < self._durable_seq.get(line, -1):
            self._record(
                "ORD005",
                f"line {line:#x} flushed again with no intervening "
                f"store", line, self._current_txn)
        self._flush_seq[line] = seq

    def _flush_lines(self, addr: int, size: int) -> None:
        seq = self.events
        for line in self._lines(addr, size):
            self._flush_one(line, seq)

    def on_flush(self, addr: int, size: int, keep: bool) -> None:
        self._event("clwb" if keep else "clflush", addr, size)
        self._flush_lines(addr, size)

    def _fence(self) -> None:
        """A fence orders every outstanding flush: their lines' flush
        sequences become durable sequences."""
        durable_seq = self._durable_seq
        for line, seq in self._flush_seq.items():
            if seq > durable_seq.get(line, -1):
                durable_seq[line] = seq
            entries = self._line_stores.get(line)
            if entries:
                durable = durable_seq[line]
                entries[:] = [entry for entry in entries
                              if entry[2] > durable]
                if not entries:
                    del self._line_stores[line]
        self._flush_seq.clear()

    def on_sfence(self) -> None:
        self._event("sfence")
        self._fence()

    def on_sync(self, addr: int, size: int) -> None:
        """The Section 2.3 sync primitive: flush range, then fence."""
        self._event("sync", addr, size)
        self._flush_lines(addr, size)
        self._fence()

    def on_sync_ranges(self,
                       ranges: Tuple[Tuple[int, int], ...]) -> None:
        """Batched sync: every distinct line of the ranges is flushed
        once (shared boundary lines are not redundant within the
        batch), then one fence."""
        self._event("sync_batch", tuple(ranges))
        seq = self.events
        seen = set()
        for addr, size in ranges:
            for line in self._lines(addr, size):
                if line not in seen:
                    seen.add(line)
                    self._flush_one(line, seq)
        self._fence()

    def on_commit_marker(self, addr: int, value: int,
                         publishes: Tuple[Tuple[int, int], ...]) -> None:
        self._event("marker", addr, value,
                    tuple(publishes) if publishes else ())
        for paddr, psize in publishes:
            pend = paddr + psize
            for line in self._lines(paddr, psize):
                # Newest store that actually intersects the published
                # range — dirtiness from neighbouring objects sharing
                # the line is not this marker's obligation.
                store_seq = max(
                    (seq for start, end, seq
                     in self._line_stores.get(line, ())
                     if start < pend and end > paddr),
                    default=None)
                if store_seq is None:
                    continue
                if self._durable_seq.get(line, -1) > store_seq:
                    continue
                if self._flush_seq.get(line, -1) > store_seq:
                    self._record(
                        "ORD002",
                        f"commit marker at {addr:#x} publishes "
                        f"[{paddr:#x}, {paddr + psize:#x}) but line "
                        f"{line:#x} was flushed without a fence", line,
                        self._current_txn)
                else:
                    self._record(
                        "ORD001",
                        f"commit marker at {addr:#x} publishes "
                        f"[{paddr:#x}, {paddr + psize:#x}) but line "
                        f"{line:#x} was never flushed", line,
                        self._current_txn)

    # ------------------------------------------------------------------
    # Allocator observer callbacks
    # ------------------------------------------------------------------

    def on_malloc(self, allocation: Allocation) -> None:
        self._event("malloc", allocation.addr, allocation.size,
                    allocation.tag)
        start = allocation.addr
        if start not in self._allocs:
            insort(self._alloc_starts, start)
        self._allocs[start] = allocation

    def on_free(self, allocation: Allocation) -> None:
        self._event("free", allocation.addr, allocation.size)
        start = allocation.addr
        if self._allocs.get(start) is allocation:
            del self._allocs[start]
            index = bisect_right(self._alloc_starts, start) - 1
            if 0 <= index < len(self._alloc_starts) \
                    and self._alloc_starts[index] == start:
                del self._alloc_starts[index]

    def on_persist(self, allocation: Allocation) -> None:
        self._event("persist", allocation.addr, allocation.size)

    # ------------------------------------------------------------------
    # Fault injector observer
    # ------------------------------------------------------------------

    def on_fault_point(self, point: str) -> None:
        self._event("fault_point", point)

    # ------------------------------------------------------------------
    # Transaction lifecycle (engine base notifications)
    # ------------------------------------------------------------------

    def txn_begin(self, txn_id: int) -> None:
        self._event("txn_begin", txn_id)
        self._current_txn = txn_id

    def txn_commit(self, txn_id: int, durable: bool) -> None:
        self._event("txn_commit", txn_id, durable)
        if self._current_txn == txn_id:
            self._current_txn = None
        if durable:
            self._check_txn_durable(txn_id)
        # Otherwise the txn's written map stays pending until the next
        # group-commit durable point.

    def txn_abort(self, txn_id: int) -> None:
        self._event("txn_abort", txn_id)
        if self._current_txn == txn_id:
            self._current_txn = None
        # Aborted effects were rolled back; nothing must be durable.
        self._txn_written.pop(txn_id, None)

    def durable_point(self, txn_ids: List[int]) -> None:
        self._event("durable_point", tuple(txn_ids))
        for txn_id in txn_ids:
            self._check_txn_durable(txn_id)

    def _check_txn_durable(self, txn_id: int) -> None:
        written = self._txn_written.pop(txn_id, None)
        if not written:
            return
        for line, (allocation, store_seq) in written.items():
            if self._allocs.get(allocation.addr) is not allocation:
                continue  # freed (and possibly reused) since the store
            if not allocation.persisted:
                continue  # volatile region: rebuilt after restart
            if self._durable_seq.get(line, -1) > store_seq:
                continue  # a later flush of the line has been fenced
            if self._flush_seq.get(line, -1) > store_seq:
                self._record(
                    "ORD004",
                    f"store to line {line:#x} (allocation "
                    f"{allocation.addr:#x}/{allocation.tag}) was "
                    f"flushed but not fenced before the durable point",
                    line, txn_id)
            else:
                self._record(
                    "ORD003",
                    f"store to line {line:#x} (allocation "
                    f"{allocation.addr:#x}/{allocation.tag}) was never "
                    f"flushed before the durable point", line, txn_id)

    # ------------------------------------------------------------------
    # Platform events & finalize
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        """Power failure: every pending obligation is void (recovery
        decides transaction fates) and all cache state is gone."""
        self._event("crash")
        self._store_seq.clear()
        self._flush_seq.clear()
        self._durable_seq.clear()
        self._line_stores.clear()
        self._txn_written.clear()
        self._current_txn = None

    def finalize(self) -> OrderingReport:
        """Run end-of-trace checks and return the report. Call after
        the workload (and a final ``flush_commits``) completed."""
        if self.require_persisted_allocations:
            for allocation in list(self._allocs.values()):
                if not allocation.persisted:
                    self._record(
                        "ORD006",
                        f"allocation {allocation.addr:#x} "
                        f"({allocation.size}B, tag={allocation.tag}) "
                        f"is live but was never persisted — it would "
                        f"be reclaimed by post-crash recovery",
                        allocation.addr)
        return self.report()

    def report(self) -> OrderingReport:
        return OrderingReport(
            engine=self.engine, events=self.events,
            violations=list(self.violations), lints=list(self.lints),
            counts=dict(self.counts))
