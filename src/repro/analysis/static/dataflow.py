"""Generic forward worklist dataflow over a :class:`~.cfg.CFG`.

One convention matters for rule precision: **exception edges carry the
pre-state of the raising statement**, not its post-state. A statement
is treated as either completing (all its effects apply, normal edge)
or raising before any effect (exception edge). That keeps the
canonical ``lock.acquire()`` / ``try: ... finally: release()`` pattern
clean — if ``acquire()`` itself raises, the lock was never taken — at
the cost of under-approximating statements that raise *between* two
effects, which the rules here don't depend on.

An analysis can refine that convention with ``exc_transfer``: when
given, the state carried on an exception edge is
``exc_transfer(index, pre)`` instead of ``pre``. The held-lock
analysis uses it to apply *release* effects (but not acquires) on the
exceptional edge — otherwise the ``finally: lock.release()``
statement's own may-raise edge would leak the held token straight to
the function's exceptional exit and flag the very pattern the rule
recommends.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TypeVar

from .cfg import CFG

__all__ = ["solve_forward"]

S = TypeVar("S")


def solve_forward(cfg: CFG, initial: S,
                  transfer: Callable[[int, S], S],
                  join: Callable[[S, S], S],
                  bottom: S,
                  exc_transfer: Optional[Callable[[int, S], S]] = None
                  ) -> Dict[int, S]:
    """Run ``transfer`` to fixpoint; return the IN state per node.

    ``initial`` seeds the entry node; unreached nodes keep ``bottom``.
    States must be immutable values with ``==`` (frozensets, tuples,
    frozen dataclasses) — the solver detects convergence by equality.
    Exception edges carry ``exc_transfer(index, pre)`` when given,
    else the raw pre-state.
    """
    states: Dict[int, S] = {node.index: bottom for node in cfg.nodes}
    states[cfg.entry] = initial
    work = [cfg.entry]
    in_work = {cfg.entry}
    while work:
        index = work.pop()
        in_work.discard(index)
        node = cfg.nodes[index]
        pre = states[index]
        post = transfer(index, pre)
        exc = pre if exc_transfer is None else exc_transfer(index, pre)
        for succ in node.succ:
            _propagate(states, succ, post, join, work, in_work)
        for succ in node.raises_to:
            _propagate(states, succ, exc, join, work, in_work)
    return states


def _propagate(states: Dict[int, S], succ: int, carried: S,
               join: Callable[[S, S], S], work: list,
               in_work: set) -> None:
    merged = join(states[succ], carried)
    if merged != states[succ]:
        states[succ] = merged
        if succ not in in_work:
            work.append(succ)
            in_work.add(succ)
