"""ACD001–ACD004: asyncio concurrency discipline.

The server tier's correctness argument (docs/server.md, "Failure
semantics") leans on four disciplines that the chaos campaign probes
dynamically; these rules prove them over all CFG paths:

========  ==========================================================
ACD001    a blocking call (``time.sleep``, ``os.fsync``, sync socket
          or subprocess I/O) inside a coroutine — it stalls the
          whole event loop, not just the calling task
ACD002    a ``.acquire()`` with no guaranteed ``.release()`` on some
          path to a normal or exceptional exit — the exact leak
          class the chaos campaign's lease checker hunts at runtime;
          use ``async with`` or ``try/finally``
ACD003    an await of an unbounded operation (socket read, bare
          future, ``drain``/``wait``/``gather``/queue ``get``) while
          holding an ``asyncio.Lock`` — a stalled peer wedges every
          task queued on that lock
ACD004    a shared ``self`` attribute read into a local, carried
          across an ``await``, then written back — the value may be
          stale because another task interleaved at the await
========  ==========================================================

Lock receivers are classified by their creation sites (an assignment
whose value calls ``asyncio.Lock`` / ``asyncio.Semaphore`` anywhere in
the project); subscripted receivers (``self._locks[pid]``) are keyed
by their base so acquire and release sites match even when the index
expression differs. Semaphore-classified receivers are exempt from
ACD003 — holding an admission slot across a durability await is the
server's intended backpressure design.
"""

from __future__ import annotations

import ast
from typing import (Dict, FrozenSet, Iterator, List, Optional, Set,
                    Tuple)

from repro.lint.framework import LintViolation

from .callgraph import FunctionInfo, Project, call_name, receiver_text
from .cfg import STMT, WITH_EXIT, statement_calls
from .dataflow import solve_forward
from .runner import StaticRule, register_static_rule

__all__ = ["BLOCKING_CALLS", "UNBOUNDED_AWAIT_NAMES"]

#: Dotted names that block the event loop when called from a
#: coroutine.
BLOCKING_CALLS = frozenset({
    "time.sleep", "os.fsync", "os.fdatasync", "os.sync",
    "select.select", "socket.create_connection",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output",
})

#: Final name segments whose awaits have no intrinsic bound —
#: ``wait_for`` (timeout) and ``sleep`` (fixed) are deliberately
#: absent.
UNBOUNDED_AWAIT_NAMES = frozenset({
    "read", "readexactly", "readline", "readuntil", "recv", "drain",
    "wait", "gather", "join", "get", "acquire", "wait_closed",
})


def _last_segment(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _receiver_base(node: ast.expr) -> str:
    """Normalised token base of a lock expression: subscripts key by
    their container (``self._locks[pid]`` → ``self._locks``) so
    acquire/release sites match across index spellings."""
    if isinstance(node, ast.Subscript):
        return receiver_text(node.value)
    return receiver_text(node)


def _acquire_base(call: ast.Call) -> Optional[str]:
    """For ``X.acquire()``: the token base of ``X``."""
    if not isinstance(call.func, ast.Attribute):
        return None
    if call.func.attr != "acquire":
        return None
    return _receiver_base(call.func.value)


def _release_base(call: ast.Call) -> Optional[str]:
    if not isinstance(call.func, ast.Attribute):
        return None
    if call.func.attr != "release":
        return None
    return _receiver_base(call.func.value)


class LockClassifier:
    """Project-wide map of token bases to their primitive kind, from
    creation sites (``X = asyncio.Lock()`` etc.)."""

    _KINDS = {"Lock": "lock", "Semaphore": "semaphore",
              "BoundedSemaphore": "semaphore", "Condition": "lock"}

    def __init__(self, project: Project) -> None:
        self.kinds: Dict[str, str] = {}
        for file in project.files:
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Assign):
                    continue
                kind = self._creation_kind(node.value)
                if kind is None:
                    continue
                for target in node.targets:
                    self.kinds[_receiver_base(target)] = kind

    def _creation_kind(self, value: ast.expr) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        return self._KINDS.get(_last_segment(call_name(value)))

    def is_lock(self, base: str) -> bool:
        return self.kinds.get(base) == "lock"


def _own_async_functions(
        project: Project) -> Iterator[FunctionInfo]:
    for func in project.functions:
        if func.is_async:
            yield func


@register_static_rule
class BlockingCallInCoroutine(StaticRule):
    """ACD001."""

    code = "ACD001"
    name = "blocking-call-in-coroutine"
    description = ("blocking call (time.sleep / os.fsync / sync "
                   "socket or subprocess I/O) inside an async def — "
                   "it stalls the whole event loop")

    def check_project(self,
                      project: Project) -> Iterator[LintViolation]:
        for func in _own_async_functions(project):
            for node in func.cfg.nodes:
                if node.stmt is None:
                    continue
                for item in statement_calls(node.stmt):
                    if not isinstance(item, ast.Call):
                        continue
                    name = call_name(item)
                    if name in BLOCKING_CALLS:
                        yield self.violation(
                            func, item,
                            f"{name}() blocks the event loop inside "
                            f"coroutine {func.name}(); use the "
                            f"asyncio equivalent or a thread "
                            f"executor")


#: Held-token state: (base text, acquire line, acquire col).
_Held = Tuple[str, int, int]
_HeldState = FrozenSet[_Held]
_H_EMPTY: _HeldState = frozenset()
_H_BOTTOM: _HeldState = frozenset({("<unreached>", -1, -1)})


class _HeldLockAnalysis:
    """Forward may-analysis of explicitly-acquired (non-context-
    managed) tokens, with optional tracking of ``async with`` lock
    regions. Self-calls subtract the callee's transitive may-release
    set."""

    def __init__(self, project: Project,
                 track_with_regions: bool = False,
                 classifier: Optional[LockClassifier] = None) -> None:
        self.project = project
        self.track_with = track_with_regions
        self.classifier = classifier
        self._release_sets: Dict[int, FrozenSet[str]] = {}

    # -- release summaries ----------------------------------------------

    def may_release(self, func: FunctionInfo) -> FrozenSet[str]:
        """Token bases ``func`` may release, transitively through
        ``self.helper()`` calls (fixpoint over the call graph)."""
        cached = self._release_sets.get(id(func.node))
        if cached is not None:
            return cached
        self._release_sets[id(func.node)] = frozenset()
        result: Set[str] = set()
        for stmt in ast.walk(func.node):
            if not isinstance(stmt, ast.Call):
                continue
            base = _release_base(stmt)
            if base is not None:
                result.add(base)
            name = call_name(stmt)
            if (func.cls is not None and name.startswith("self.")
                    and name.count(".") == 1):
                callee = self.project.resolve_method(
                    func.cls.name, name.split(".", 1)[1])
                if callee is not None \
                        and callee.node is not func.node:
                    result |= self.may_release(callee)
        summary = frozenset(result)
        self._release_sets[id(func.node)] = summary
        return summary

    # -- transfer -------------------------------------------------------

    def _node_effects(self, func: FunctionInfo, node_index: int
                      ) -> List[Tuple[str, object]]:
        """Ordered (effect, payload) list for one CFG node: acquire /
        release / call-releases effects."""
        cfg = func.cfg
        node = cfg.nodes[node_index]
        effects: List[Tuple[str, object]] = []
        if node.kind == STMT and node.context_expr is not None \
                and self.track_with:
            base = _receiver_base(node.context_expr)
            if self.classifier is None \
                    or self.classifier.is_lock(base):
                effects.append(("acquire", (base, node.line, 0)))
            return effects
        if node.kind == WITH_EXIT:
            if self.track_with and node.context_expr is not None:
                base = _receiver_base(node.context_expr)
                effects.append(("release", base))
            return effects
        if node.stmt is None:
            return effects
        for item in statement_calls(node.stmt):
            if not isinstance(item, ast.Call):
                continue
            base = _acquire_base(item)
            if base is not None:
                effects.append(
                    ("acquire",
                     (base, getattr(item, "lineno", 0),
                      getattr(item, "col_offset", 0))))
                continue
            base = _release_base(item)
            if base is not None:
                effects.append(("release", base))
                continue
            name = call_name(item)
            if (func.cls is not None and name.startswith("self.")
                    and name.count(".") == 1):
                callee = self.project.resolve_method(
                    func.cls.name, name.split(".", 1)[1])
                if callee is not None \
                        and callee.node is not func.node:
                    released = self.may_release(callee)
                    if released:
                        effects.append(("call-releases", released))
        return effects

    def apply(self, state: Set[_Held],
              effect: Tuple[str, object]) -> None:
        kind, payload = effect
        if kind == "acquire":
            assert isinstance(payload, tuple)
            state.add(payload)
        elif kind == "release":
            assert isinstance(payload, str)
            for held in [h for h in state if h[0] == payload]:
                state.discard(held)
        elif kind == "call-releases":
            assert isinstance(payload, frozenset)
            for held in [h for h in state if h[0] in payload]:
                state.discard(held)

    def run(self, func: FunctionInfo) -> Dict[int, _HeldState]:
        cfg = func.cfg

        def transfer(index: int, state: _HeldState) -> _HeldState:
            if state == _H_BOTTOM:
                return state
            current = set(state)
            for effect in self._node_effects(func, index):
                self.apply(current, effect)
            return frozenset(current)

        def exc_transfer(index: int,
                         state: _HeldState) -> _HeldState:
            # Releases (direct, via helper, or a with-block __exit__)
            # still count on the exceptional edge: the raising
            # statement in ``finally: lock.release()`` must not leak
            # its own token to the exceptional exit. Acquires do not —
            # if acquire() raises, the lock was never taken.
            if state == _H_BOTTOM:
                return state
            current = set(state)
            for effect in self._node_effects(func, index):
                if effect[0] != "acquire":
                    self.apply(current, effect)
            return frozenset(current)

        def join(a: _HeldState, b: _HeldState) -> _HeldState:
            if a == _H_BOTTOM:
                return b
            if b == _H_BOTTOM:
                return a
            return a | b

        return solve_forward(cfg, _H_EMPTY, transfer, join,
                             _H_BOTTOM, exc_transfer=exc_transfer)


@register_static_rule
class AcquireWithoutGuaranteedRelease(StaticRule):
    """ACD002."""

    code = "ACD002"
    name = "acquire-without-guaranteed-release"
    description = (".acquire() that may reach a normal or exceptional "
                   "exit with no matching .release(); use async with "
                   "or try/finally")

    def check_project(self,
                      project: Project) -> Iterator[LintViolation]:
        analysis = _HeldLockAnalysis(project)
        for func in project.functions:
            states = analysis.run(func)
            cfg = func.cfg
            leaked: Dict[_Held, str] = {}
            for exit_index, how in ((cfg.exit, "return"),
                                    (cfg.raise_exit, "exception")):
                state = states[exit_index]
                if state == _H_BOTTOM:
                    continue
                for held in state:
                    leaked.setdefault(held, how)
            for held in sorted(leaked):
                base, line, col = held
                anchor = ast.Pass()
                anchor.lineno = line
                anchor.col_offset = col
                yield self.violation(
                    func, anchor,
                    f"{base}.acquire() in {func.name}() may reach a "
                    f"{leaked[held]} exit without release; use "
                    f"async with or try/finally")


def _await_targets(stmt: ast.AST) -> Iterator[Tuple[ast.Await, str]]:
    """(await node, description) for awaits of unbounded operations."""
    for item in statement_calls(stmt):
        if not isinstance(item, ast.Await):
            continue
        value = item.value
        if isinstance(value, ast.Call):
            name = call_name(value)
            if _last_segment(name) in UNBOUNDED_AWAIT_NAMES:
                yield item, f"{name}()"
        elif isinstance(value, (ast.Name, ast.Attribute)):
            # A bare future/task: unbounded unless externally timed.
            yield item, receiver_text(value)


@register_static_rule
class UnboundedAwaitHoldingLock(StaticRule):
    """ACD003."""

    code = "ACD003"
    name = "unbounded-await-holding-lock"
    description = ("await of an unbounded operation (socket read, "
                   "bare future, drain/wait/gather) while holding an "
                   "asyncio.Lock")

    def check_project(self,
                      project: Project) -> Iterator[LintViolation]:
        classifier = LockClassifier(project)
        analysis = _HeldLockAnalysis(project, track_with_regions=True,
                                     classifier=classifier)
        for func in _own_async_functions(project):
            states = analysis.run(func)
            cfg = func.cfg
            for node in cfg.nodes:
                state = states[node.index]
                if state == _H_BOTTOM or node.stmt is None:
                    continue
                held_locks = sorted(
                    {h[0] for h in state
                     if classifier.is_lock(h[0])})
                if not held_locks:
                    continue
                for await_node, label in _await_targets(node.stmt):
                    yield self.violation(
                        func, await_node,
                        f"awaits unbounded {label} while holding "
                        f"{', '.join(held_locks)} — a stalled peer "
                        f"wedges every task queued on the lock")


#: Tracked binding: (local name, self attribute, went stale).
_Bind = Tuple[str, str, bool]
_BindState = FrozenSet[_Bind]
_B_BOTTOM: _BindState = frozenset({("<unreached>", "", False)})


def _self_attr_reads(value: ast.expr) -> Set[str]:
    attrs: Set[str] = set()
    for node in ast.walk(value):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and isinstance(node.ctx, ast.Load)):
            attrs.add(node.attr)
    return attrs


def _has_await(stmt: ast.AST) -> bool:
    return any(isinstance(item, ast.Await)
               for item in statement_calls(stmt))


@register_static_rule
class StaleReadModifyWrite(StaticRule):
    """ACD004."""

    code = "ACD004"
    name = "stale-read-modify-write-across-await"
    description = ("a self attribute read into a local, carried "
                   "across an await, then written back — another "
                   "task may have updated it at the await point")

    def check_project(self,
                      project: Project) -> Iterator[LintViolation]:
        for func in _own_async_functions(project):
            yield from self._check_function(func)

    def _check_function(
            self, func: FunctionInfo) -> Iterator[LintViolation]:
        cfg = func.cfg

        def transfer(index: int,
                     state: _BindState) -> _BindState:
            if state == _B_BOTTOM:
                return state
            node = cfg.nodes[index]
            if node.stmt is None:
                return state
            return frozenset(self._step(node.stmt, set(state)))

        def join(a: _BindState, b: _BindState) -> _BindState:
            if a == _B_BOTTOM:
                return b
            if b == _B_BOTTOM:
                return a
            return a | b

        states = solve_forward(cfg, frozenset(), transfer, join,
                               _B_BOTTOM)
        for node in cfg.nodes:
            state = states[node.index]
            if state == _B_BOTTOM or node.stmt is None:
                continue
            yield from self._report(func, node.stmt, set(state))

    def _step(self, stmt: ast.AST,
              state: Set[_Bind]) -> Set[_Bind]:
        if _has_await(stmt):
            state = {(name, attr, True)
                     for name, attr, _stale in state}
        if not isinstance(stmt, ast.Assign):
            return state
        if len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            local = stmt.targets[0].id
            state = {bind for bind in state if bind[0] != local}
            reads = _self_attr_reads(stmt.value)
            if len(reads) == 1:
                state.add((local, reads.pop(), False))
        return state

    def _report(self, func: FunctionInfo, stmt: ast.AST,
                state: Set[_Bind]) -> Iterator[LintViolation]:
        if _has_await(stmt):
            state = {(name, attr, True)
                     for name, attr, _stale in state}
        if not isinstance(stmt, ast.Assign):
            return
        target = stmt.targets[0] if len(stmt.targets) == 1 else None
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return
        written = target.attr
        used = {node.id for node in ast.walk(stmt.value)
                if isinstance(node, ast.Name)}
        for name, attr, stale in sorted(state):
            if stale and attr == written and name in used:
                yield self.violation(
                    func, stmt,
                    f"self.{written} is written from local "
                    f"{name!r} that was read from self.{attr} "
                    f"before an await — another task may have "
                    f"updated it; re-read after the await or hold "
                    f"the owning lock across it")
