"""Static analysis substrate and the SDA/ACD rule families.

Importing this package registers every rule (the ``sda``/``acd``
modules run their ``@register_static_rule`` decorators on import), so
``repro analyze`` and tests only need::

    from repro.analysis.static import analyze_paths
"""

from . import acd as _acd          # noqa: F401  (registers ACD rules)
from . import sda as _sda          # noqa: F401  (registers SDA rules)
from .callgraph import Project, build_project
from .cfg import CFG, build_cfg, statement_calls
from .dataflow import solve_forward
from .runner import (DEFAULT_ANALYZE_PATHS, STATIC_REGISTRY,
                     StaticRule, analyze_paths, analyze_project,
                     register_static_rule, static_rules)

__all__ = [
    "CFG", "DEFAULT_ANALYZE_PATHS", "Project", "STATIC_REGISTRY",
    "StaticRule", "analyze_paths", "analyze_project", "build_cfg",
    "build_project", "register_static_rule", "solve_forward",
    "statement_calls", "static_rules",
]
