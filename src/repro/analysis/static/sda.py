"""SDA001–SDA004: static durability analysis.

The paper's Section 2.3 ordering contract — a store to NVM is durable
only after a CLFLUSH/CLWB *and* an SFENCE — is checked dynamically by
``repro check`` (ORD001–ORD006) on whatever paths a workload happens
to execute. These rules prove the same discipline over *all* CFG
paths at lint time:

========  ==========================================================
SDA001    an NVM store can reach a commit-marker site
          (``atomic_durable_store_u64``) with no ``sync``/``sfence``
          on some path — the marker publishes data that may still be
          sitting in a volatile CPU cache
SDA002    a durability-root method (``_do_commit``,
          ``_do_flush_commits``, ``recover``, ``checkpoint``) of an
          ``is_nvm_aware`` engine can return with a store still
          unsynced on some path — the txn reports durable state that
          a crash can lose
SDA003    the same range expression is flushed twice with no
          intervening store — the second flush pays fence/flush
          latency for bytes already durable (Table 2's per-txn sync
          counts are the paper's cost model for exactly this)
SDA004    an ``sfence`` with no preceding flush *or call* on any
          path — the fence orders nothing (static mirror of LNT001,
          but path-sensitive)
========  ==========================================================

Vocabulary is name-based (``store``/``store_u64``/``write_slot`` =
store; ``sync*``/``persist`` = clearing sync; ``clflush``/``clwb`` =
flush; ``sfence`` = fence), so helper calls through pool/allocator
facades classify without type inference. ``self.method()`` calls
resolve through the class hierarchy and contribute a summary
(clears-all / may-exit-dirty / may-hit-marker-unguarded), computed
bottom-up with a neutral assumption on recursion.

Approximations, chosen to keep the gate false-positive-free:

* any ``sync``-class event clears *all* pending stores (a range
  comparison would need value analysis; the runtime checker has the
  precise version);
* ``set_state(..., durable=<non-constant>)`` is assumed to sync;
* unclassified calls neither clear nor add pending stores, but do
  invalidate SDA003 flush-memory and satisfy SDA004.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.lint.framework import LintViolation

from .callgraph import (ClassInfo, FunctionInfo, Project, call_name,
                        receiver_text)
from .cfg import statement_calls
from .dataflow import solve_forward
from .runner import StaticRule, register_static_rule

__all__ = ["SDA_ROOT_METHODS"]

STORE_NAMES = frozenset({"store", "store_u64", "write_slot"})
SYNC_NAMES = frozenset({"sync", "sync_ranges", "sync_many",
                        "sync_slot", "sync_node", "persist"})
FLUSH_NAMES = frozenset({"clflush", "clwb"})
FENCE_NAMES = frozenset({"sfence"})
MARKER_NAMES = frozenset({"atomic_durable_store_u64"})

#: Engine methods that end a durability epoch: when they return, the
#: system believes the work they did is crash-safe.
SDA_ROOT_METHODS = frozenset({"_do_commit", "_do_flush_commits",
                              "recover", "checkpoint"})

#: A store token: (line, col, description). The caller-inherited
#: pseudo-token lets one dataflow run double as a function summary.
Token = Tuple[int, int, str]
_INHERITED: Token = (-1, -1, "<caller store>")

State = FrozenSet[Token]
_EMPTY: State = frozenset()
_BOTTOM: State = frozenset({(-2, -2, "<unreached>")})


def _last_segment(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _set_state_syncs(call: ast.Call) -> bool:
    """``set_state(addr, state, durable)``: syncs unless ``durable``
    is literally False."""
    durable: Optional[ast.expr] = None
    if len(call.args) >= 3:
        durable = call.args[2]
    for keyword in call.keywords:
        if keyword.arg == "durable":
            durable = keyword.value
    if isinstance(durable, ast.Constant):
        return bool(durable.value)
    return True


class _Event:
    """One classified durability event inside a statement."""

    __slots__ = ("kind", "call", "token")

    def __init__(self, kind: str, call: ast.Call,
                 token: Optional[Token] = None) -> None:
        self.kind = kind
        self.call = call
        self.token = token


def classify(call: ast.Call) -> List[_Event]:
    name = _last_segment(call_name(call))
    line = getattr(call, "lineno", 0)
    col = getattr(call, "col_offset", 0)
    if name in STORE_NAMES:
        return [_Event("store", call, (line, col, f"{name}()"))]
    if name == "set_state":
        events = [_Event("store", call, (line, col, "set_state()"))]
        if _set_state_syncs(call):
            events.append(_Event("sync", call))
        return events
    if name in SYNC_NAMES:
        return [_Event("sync", call)]
    if name in FLUSH_NAMES:
        return [_Event("flush", call)]
    if name in FENCE_NAMES:
        return [_Event("fence", call)]
    if name in MARKER_NAMES:
        return [_Event("marker", call)]
    return [_Event("other", call)]


class _CallEvent(_Event):
    """A resolved ``self.method()`` call, carrying its callee."""

    __slots__ = ("callee",)

    def __init__(self, call: ast.Call, callee: FunctionInfo) -> None:
        super().__init__("call", call)
        self.callee = callee


def node_events(project: Project, func: FunctionInfo,
                context: Optional[ClassInfo],
                stmt: ast.AST) -> List[_Event]:
    """Classified events of one CFG statement, with ``self.m()`` calls
    resolved through ``context``'s MRO into ``call`` events carrying
    the callee."""
    events: List[_Event] = []
    for node in statement_calls(stmt):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if (context is not None and name.startswith("self.")
                and name.count(".") == 1):
            callee = project.resolve_method(context.name,
                                            name.split(".", 1)[1])
            if callee is not None and callee.node is not func.node:
                events.append(_CallEvent(node, callee))
                continue
        events.extend(classify(node))
    return events


class Summary:
    """What a callee does to its caller's pending-store state."""

    __slots__ = ("clears_all", "may_exit_dirty",
                 "may_marker_unguarded")

    def __init__(self, clears_all: bool = False,
                 may_exit_dirty: bool = False,
                 may_marker_unguarded: bool = False) -> None:
        self.clears_all = clears_all
        self.may_exit_dirty = may_exit_dirty
        self.may_marker_unguarded = may_marker_unguarded


_NEUTRAL = Summary()


class PendingStoreAnalysis:
    """The shared pending-store dataflow: per (function, context
    class) it computes IN states, a :class:`Summary`, and the marker
    sites reached dirty."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._summaries: Dict[Tuple[int, str], Summary] = {}
        self._in_progress: set = set()

    # -- events ---------------------------------------------------------

    def _events(self, func: FunctionInfo,
                context: Optional[ClassInfo],
                node_index: int) -> List[_Event]:
        cfg = func.cfg
        node = cfg.nodes[node_index]
        if node.stmt is None:
            return []
        return node_events(self.project, func, context, node.stmt)

    # -- transfer -------------------------------------------------------

    def _transfer(self, func: FunctionInfo,
                  context: Optional[ClassInfo],
                  node_index: int, state: State) -> State:
        if state == _BOTTOM:
            return state
        current = set(state)
        for event in self._events(func, context, node_index):
            if event.kind == "store" and event.token is not None:
                current.add(event.token)
            elif event.kind in ("sync", "fence", "marker"):
                # sync = flush+fence; the marker primitive syncs its
                # own cache line and fences, closing the epoch.
                current.clear()
            elif isinstance(event, _CallEvent):
                summary = self.summary(event.callee, context)
                if summary.clears_all:
                    current.clear()
                if summary.may_exit_dirty:
                    line = getattr(event.call, "lineno", 0)
                    col = getattr(event.call, "col_offset", 0)
                    current.add(
                        (line, col,
                         f"via {event.callee.qualname}()"))
        return frozenset(current)

    def run(self, func: FunctionInfo,
            context: Optional[ClassInfo]) -> Dict[int, State]:
        cfg = func.cfg

        def transfer(index: int, state: State) -> State:
            return self._transfer(func, context, index, state)

        def join(a: State, b: State) -> State:
            if a == _BOTTOM:
                return b
            if b == _BOTTOM:
                return a
            return a | b

        return solve_forward(cfg, frozenset({_INHERITED}), transfer,
                             join, _BOTTOM)

    # -- summaries ------------------------------------------------------

    def summary(self, func: FunctionInfo,
                context: Optional[ClassInfo]) -> Summary:
        ctx_name = context.name if context is not None else ""
        key = (id(func.node), ctx_name)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return _NEUTRAL       # recursion: assume no effect
        self._in_progress.add(key)
        try:
            states = self.run(func, context)
        finally:
            self._in_progress.discard(key)
        summary = self._summarise(func, context, states)
        self._summaries[key] = summary
        return summary

    def _summarise(self, func: FunctionInfo,
                   context: Optional[ClassInfo],
                   states: Dict[int, State]) -> Summary:
        cfg = func.cfg
        exit_state = states[cfg.exit]
        clears_all = (exit_state == _BOTTOM
                      or _INHERITED not in exit_state)
        may_exit_dirty = (exit_state != _BOTTOM
                          and any(token != _INHERITED
                                  for token in exit_state))
        may_marker = False
        for _marker, pending in self.dirty_markers(func, context,
                                                   states):
            if _INHERITED in pending:
                may_marker = True
                break
        return Summary(clears_all, may_exit_dirty, may_marker)

    # -- reporting helpers ----------------------------------------------

    def dirty_markers(self, func: FunctionInfo,
                      context: Optional[ClassInfo],
                      states: Dict[int, State]
                      ) -> Iterator[Tuple[ast.Call, State]]:
        """(marker call, pending stores when it executes) pairs,
        replaying each statement's events against its IN state."""
        cfg = func.cfg
        for node in cfg.nodes:
            state = states[node.index]
            if state == _BOTTOM or node.stmt is None:
                continue
            current = set(state)
            for event in self._events(func, context, node.index):
                if event.kind == "marker" and current:
                    yield event.call, frozenset(current)
                if event.kind == "store" and event.token is not None:
                    current.add(event.token)
                elif event.kind in ("sync", "fence", "marker"):
                    current.clear()
                elif isinstance(event, _CallEvent):
                    summary = self.summary(event.callee, context)
                    if summary.may_marker_unguarded and current:
                        yield event.call, frozenset(current)
                    if summary.clears_all:
                        current.clear()
                    if summary.may_exit_dirty:
                        line = getattr(event.call, "lineno", 0)
                        col = getattr(event.call, "col_offset", 0)
                        current.add(
                            (line, col,
                             f"via {event.callee.qualname}()"))


def _function_contexts(
        project: Project) -> Iterator[Tuple[FunctionInfo,
                                            Optional[ClassInfo]]]:
    """Every function, in its defining class's context (or module
    scope). Nested defs are not indexed — their CFGs never run here."""
    for func in project.functions:
        yield func, func.cls


@register_static_rule
class StoreReachesMarkerUnsynced(StaticRule):
    """SDA001."""

    code = "SDA001"
    name = "store-reaches-marker-unsynced"
    description = ("an NVM store may reach the commit marker "
                   "(atomic_durable_store_u64) with no sync/sfence on "
                   "some path")

    def check_project(self,
                      project: Project) -> Iterator[LintViolation]:
        analysis = PendingStoreAnalysis(project)
        for func, context in _function_contexts(project):
            states = analysis.run(func, context)
            seen: set = set()
            for marker, pending in analysis.dirty_markers(
                    func, context, states):
                for token in sorted(pending):
                    if token == _INHERITED:
                        continue
                    if token in seen:
                        continue
                    seen.add(token)
                    line, _col, label = token
                    yield self.violation(
                        func, marker,
                        f"store {label} at line {line} may reach "
                        f"this commit marker without an intervening "
                        f"sync/sfence on some path")


@register_static_rule
class DirtyStoreAtDurabilityExit(StaticRule):
    """SDA002."""

    code = "SDA002"
    name = "dirty-store-at-durability-exit"
    description = ("a durability-root method (_do_commit/"
                   "_do_flush_commits/recover/checkpoint) of an "
                   "is_nvm_aware engine may return with a store "
                   "still unsynced")

    def check_project(self,
                      project: Project) -> Iterator[LintViolation]:
        analysis = PendingStoreAnalysis(project)
        seen: set = set()
        for cls, func in self._roots(project):
            states = analysis.run(func, cls)
            exit_state = states[func.cfg.exit]
            if exit_state == _BOTTOM:
                continue
            for token in sorted(exit_state):
                if token == _INHERITED:
                    continue
                line, col, label = token
                key = (func.file.path, line, col)
                if key in seen:
                    continue
                seen.add(key)
                anchor = ast.Pass()
                anchor.lineno = line
                anchor.col_offset = col
                yield self.violation(
                    func, anchor,
                    f"store {label} may still be unsynced when "
                    f"{cls.name}.{func.name}() returns — the engine "
                    f"reports durable state a crash can lose")

    @staticmethod
    def _roots(project: Project
               ) -> Iterator[Tuple[ClassInfo, FunctionInfo]]:
        yielded: set = set()
        for name in sorted(project.classes):
            if project.class_attr(name, "is_nvm_aware") is not True:
                continue
            cls = project.classes[name]
            for method in sorted(SDA_ROOT_METHODS):
                func = project.resolve_method(name, method)
                if func is None:
                    continue
                key = (id(func.node), name)
                if key in yielded:
                    continue
                yielded.add(key)
                yield cls, func


@register_static_rule
class RedundantDoubleFlush(StaticRule):
    """SDA003."""

    code = "SDA003"
    name = "redundant-double-flush"
    description = ("the same range expression is flushed/synced twice "
                   "with no intervening store — the second flush is "
                   "pure fence/flush latency")

    def check_project(self,
                      project: Project) -> Iterator[LintViolation]:
        for func, context in _function_contexts(project):
            yield from self._check_function(project, func, context)

    def _check_function(self, project: Project, func: FunctionInfo,
                        context: Optional[ClassInfo]
                        ) -> Iterator[LintViolation]:
        cfg = func.cfg
        bottom = frozenset({"<unreached>"})

        def events(index: int) -> List[_Event]:
            node = cfg.nodes[index]
            if node.stmt is None:
                return []
            return node_events(project, func, context, node.stmt)

        def flush_key(event: _Event) -> Optional[str]:
            if event.kind not in ("sync", "flush"):
                return None
            call = event.call
            name = _last_segment(call_name(call))
            args = ", ".join(receiver_text(arg) for arg in call.args)
            return f"{name}({args})"

        def invalidated(state: set, stmt_targets: List[str]) -> set:
            if not stmt_targets:
                return state
            return {key for key in state
                    if not any(_mentions(key, name)
                               for name in stmt_targets)}

        def transfer(index: int,
                     state: FrozenSet[str]) -> FrozenSet[str]:
            if state == bottom:
                return state
            node = cfg.nodes[index]
            current = set(state)
            current = invalidated(current,
                                  _assigned_names(node.stmt))
            for event in events(index):
                key = flush_key(event)
                if key is not None:
                    current.add(key)
                elif event.kind in ("store", "marker", "call",
                                    "other"):
                    current.clear()
            return frozenset(current)

        def join(a: FrozenSet[str],
                 b: FrozenSet[str]) -> FrozenSet[str]:
            if a == bottom:
                return b
            if b == bottom:
                return a
            return a | b

        states = solve_forward(cfg, frozenset(), transfer, join,
                               bottom)
        for node in cfg.nodes:
            state = states[node.index]
            if state == bottom or node.stmt is None:
                continue
            current = set(state)
            current = invalidated(current,
                                  _assigned_names(node.stmt))
            for event in events(node.index):
                key = flush_key(event)
                if key is not None:
                    if key in current:
                        yield self.violation(
                            func, event.call,
                            f"range {key} was already flushed with "
                            f"no intervening store — the second "
                            f"flush re-pays flush+fence latency")
                    current.add(key)
                elif event.kind in ("store", "marker", "call",
                                    "other"):
                    current.clear()


def _mentions(key: str, name: str) -> bool:
    return re.search(rf"\b{re.escape(name)}\b", key) is not None


def _assigned_names(stmt: Optional[ast.AST]) -> List[str]:
    """Names (re)bound by this statement — they invalidate SDA003
    flush-memory keys that mention them."""
    if stmt is None:
        return []
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [item.optional_vars for item in stmt.items
                   if item.optional_vars is not None]
    names: List[str] = []
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.append(node.id)
    return names


@register_static_rule
class FenceWithoutFlush(StaticRule):
    """SDA004."""

    code = "SDA004"
    name = "fence-without-flush"
    description = ("sfence with no preceding flush (or any call that "
                   "could flush) on any path — the fence orders "
                   "nothing")

    #: Facade wrappers whose whole job is to emit the instruction.
    _WRAPPERS = frozenset({"sfence"})

    def check_project(self,
                      project: Project) -> Iterator[LintViolation]:
        for func, context in _function_contexts(project):
            if func.name in self._WRAPPERS:
                continue
            yield from self._check_function(project, func, context)

    def _check_function(self, project: Project, func: FunctionInfo,
                        context: Optional[ClassInfo]
                        ) -> Iterator[LintViolation]:
        cfg = func.cfg
        # State: 0 = unreached, 1 = no flush since last fence,
        # 2 = may have flushed. join = max (may-analysis).

        def events(index: int) -> List[_Event]:
            node = cfg.nodes[index]
            if node.stmt is None:
                return []
            return node_events(project, func, context, node.stmt)

        def step(state: int, event: _Event) -> int:
            if event.kind in ("flush", "store", "sync", "marker",
                              "call", "other"):
                # Any call may flush; stores make a future fence
                # meaningful in the write-through model.
                return 2
            if event.kind == "fence":
                return 1
            return state

        def transfer(index: int, state: int) -> int:
            if state == 0:
                return 0
            for event in events(index):
                state = step(state, event)
            return state

        states = solve_forward(cfg, 1, transfer, max, 0)
        for node in cfg.nodes:
            state = states[node.index]
            if state == 0 or node.stmt is None:
                continue
            for event in events(node.index):
                if event.kind == "fence" and state == 1:
                    yield self.violation(
                        func, event.call,
                        f"sfence in {func.name}() with no preceding "
                        f"flush on any path — it orders nothing")
                state = step(state, event)
