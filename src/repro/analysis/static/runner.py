"""Static-rule registry and runner (`repro analyze`'s engine room).

Static rules differ from the LNT lint rules in one way: they operate
on a :class:`~.callgraph.Project` (CFGs + class hierarchy), not on a
single parsed file. They reuse the lint framework's violation type and
``# noqa`` waiver semantics, so a waiver comment works identically for
``LNT``, ``SDA`` and ``ACD`` codes.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Optional, Tuple,
                    Type, Union)

from repro.lint.framework import LintViolation, SourceFile

from .callgraph import FunctionInfo, Project, build_project

__all__ = ["StaticRule", "STATIC_REGISTRY", "register_static_rule",
           "analyze_project", "analyze_paths", "DEFAULT_ANALYZE_PATHS",
           "static_rules"]

#: `repro analyze` scans the whole package by default.
_PACKAGE_ROOT = Path(__file__).resolve().parents[3]

DEFAULT_ANALYZE_PATHS: Tuple[str, ...] = (str(_PACKAGE_ROOT),)


class StaticRule:
    """Base class: subclasses set ``code``/``name``/``description``
    and yield violations from :meth:`check_project`."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check_project(self,
                      project: Project) -> Iterator[LintViolation]:
        return iter(())

    def violation(self, func: FunctionInfo, node: ast.AST,
                  message: str) -> LintViolation:
        return LintViolation(
            code=self.code, message=message, path=func.file.path,
            line=getattr(node, "lineno", func.node.lineno),
            col=getattr(node, "col_offset", 0),
            symbol=func.qualname)


STATIC_REGISTRY: Dict[str, Type[StaticRule]] = {}


def register_static_rule(cls: Type[StaticRule]) -> Type[StaticRule]:
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in STATIC_REGISTRY:
        raise ValueError(f"duplicate static rule code {cls.code}")
    STATIC_REGISTRY[cls.code] = cls
    return cls


def analyze_project(project: Project,
                    select: Optional[Iterable[str]] = None
                    ) -> List[LintViolation]:
    """Run all (or ``select``-ed) static rules, apply noqa waivers,
    return violations sorted by location."""
    wanted = None if select is None else {code.upper()
                                          for code in select}
    unknown = (wanted or set()) - set(STATIC_REGISTRY)
    if unknown:
        raise ValueError(
            f"unknown rule codes: {', '.join(sorted(unknown))}; "
            f"choose from {', '.join(sorted(STATIC_REGISTRY))}")
    by_path: Dict[str, SourceFile] = {file.path: file
                                      for file in project.files}
    violations: List[LintViolation] = []
    for code in sorted(STATIC_REGISTRY):
        if wanted is not None and code not in wanted:
            continue
        violations.extend(STATIC_REGISTRY[code]().check_project(project))
    kept = [violation for violation in violations
            if violation.path not in by_path
            or not by_path[violation.path].waives(violation)]
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return kept


def analyze_paths(paths: Iterable[Union[str, Path]],
                  select: Optional[Iterable[str]] = None
                  ) -> List[LintViolation]:
    return analyze_project(build_project(paths), select=select)


def static_rules() -> Dict[str, Tuple[str, str]]:
    """code -> (name, description) for docs and ``analyze --rules``
    (a function, not a constant: the rule modules import this module,
    so the registry fills in after it loads)."""
    return {code: (cls.name, cls.description)
            for code, cls in sorted(STATIC_REGISTRY.items())}
