"""Project model and call graph for the static rules.

The durability rules need to see through helper methods: NVM-InP's
insert path stores via ``FixedSlotPool.write_slot`` and syncs via
``VarlenPool.sync_many``, so purely intraprocedural analysis would be
blind. This module builds a light project-wide model:

* every module's AST (reusing :class:`repro.lint.framework.SourceFile`
  so ``# noqa`` waivers keep working);
* every class with its methods, resolved base classes (by unique
  simple name within the project) and an MRO approximation;
* ``self.method(...)`` call resolution in the context of a *concrete*
  class, walking that class's MRO — which is exactly how the engine
  hierarchy dispatches (``StorageEngine.commit`` → the registered
  engine's ``_do_commit``);
* simple class-attribute lookup through the MRO (used to find engines
  with ``is_nvm_aware = True``).

Resolution is deliberately name-based and unsound in the compiler
sense (no type inference); for this codebase's single-inheritance,
uniquely-named classes it is exact, and the rules only use it to
*extend* path coverage, never to silence a local finding.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import (Dict, Iterable, List, Optional, Sequence, Union)

from repro.lint.framework import SourceFile

from .cfg import CFG, FunctionNode, build_cfg

__all__ = ["ClassInfo", "FunctionInfo", "Project", "build_project",
           "call_name", "receiver_text"]


def call_name(call: ast.Call) -> str:
    """Dotted name of a call's callee: ``self._memory.sync`` →
    ``self._memory.sync``; plain ``sync(...)`` → ``sync``."""
    parts: List[str] = []
    node: ast.expr = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif not parts:
        return ""
    else:
        parts.append("?")
    return ".".join(reversed(parts))


def receiver_text(node: ast.expr) -> str:
    """Normalised source text of an expression, used as a token key
    for lock receivers and flush ranges."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


class FunctionInfo:
    """One function or method and its lazily-built CFG."""

    __slots__ = ("node", "file", "cls", "_cfg")

    def __init__(self, node: FunctionNode, file: SourceFile,
                 cls: Optional["ClassInfo"]) -> None:
        self.node = node
        self.file = file
        self.cls = cls
        self._cfg: Optional[CFG] = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def qualname(self) -> str:
        if self.cls is not None:
            return f"{self.cls.name}.{self.node.name}"
        return self.node.name

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg


class ClassInfo:
    """One class: its methods, simple class attributes, and base-class
    names (resolved later by :class:`Project`)."""

    __slots__ = ("node", "file", "name", "methods", "base_names",
                 "class_attrs")

    def __init__(self, node: ast.ClassDef, file: SourceFile) -> None:
        self.node = node
        self.file = file
        self.name = node.name
        self.methods: Dict[str, FunctionInfo] = {}
        self.base_names: List[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                self.base_names.append(base.id)
            elif isinstance(base, ast.Attribute):
                self.base_names.append(base.attr)
        #: name → constant value, for ``is_nvm_aware = True``-style
        #: flags assigned directly in the class body.
        self.class_attrs: Dict[str, object] = {}
        for stmt in node.body:
            if (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Constant)):
                self.class_attrs[stmt.targets[0].id] = \
                    stmt.value.value


class Project:
    """Every analysed module, class and function, plus resolution."""

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.files = list(files)
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: List[FunctionInfo] = []
        #: Simple class names that appear more than once — resolution
        #: through them is ambiguous, so it is skipped.
        self._ambiguous: set[str] = set()
        for file in self.files:
            self._index_module(file)
        self._mro_cache: Dict[str, List[ClassInfo]] = {}

    # -- indexing -------------------------------------------------------

    def _index_module(self, file: SourceFile) -> None:
        for node in file.tree.body:
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                self.functions.append(FunctionInfo(node, file, None))
            elif isinstance(node, ast.ClassDef):
                self._index_class(node, file)

    def _index_class(self, node: ast.ClassDef,
                     file: SourceFile) -> None:
        info = ClassInfo(node, file)
        if node.name in self.classes:
            self._ambiguous.add(node.name)
        else:
            self.classes[node.name] = info
        for item in node.body:
            if isinstance(item, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                func = FunctionInfo(item, file, info)
                info.methods[item.name] = func
                self.functions.append(func)

    # -- resolution -----------------------------------------------------

    def lookup_class(self, name: str) -> Optional[ClassInfo]:
        if name in self._ambiguous:
            return None
        return self.classes.get(name)

    def mro(self, name: str) -> List[ClassInfo]:
        """Linearised bases (the class first), depth-first with
        duplicates removed — close enough to C3 for the project's
        single-inheritance hierarchies."""
        cached = self._mro_cache.get(name)
        if cached is not None:
            return cached
        order: List[ClassInfo] = []
        seen: set[str] = set()

        def visit(cls_name: str) -> None:
            if cls_name in seen:
                return
            seen.add(cls_name)
            info = self.lookup_class(cls_name)
            if info is None:
                return
            order.append(info)
            for base in info.base_names:
                visit(base)

        visit(name)
        self._mro_cache[name] = order
        return order

    def resolve_method(self, cls_name: str,
                       method: str) -> Optional[FunctionInfo]:
        """``self.method()`` in the context of concrete ``cls_name``."""
        for info in self.mro(cls_name):
            if method in info.methods:
                return info.methods[method]
        return None

    def class_attr(self, cls_name: str, attr: str) -> object:
        """A simple class attribute through the MRO, else ``None``."""
        for info in self.mro(cls_name):
            if attr in info.class_attrs:
                return info.class_attrs[attr]
        return None

    def subclasses(self, base_name: str) -> List[ClassInfo]:
        """Every class whose MRO contains ``base_name`` (inclusive)."""
        out = []
        for name in self.classes:
            if any(info.name == base_name for info in self.mro(name)):
                out.append(self.classes[name])
        return out


def build_project(
        paths: Iterable[Union[str, Path]]) -> Project:
    """Read every ``*.py`` under ``paths`` into a :class:`Project`.

    Unparseable files are skipped (the analyzer must not crash on a
    half-written module; the syntax error will surface in tests and
    plain linting anyway).
    """
    files: List[SourceFile] = []
    seen: set = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            key = str(candidate.resolve())
            if key in seen:
                continue
            seen.add(key)
            try:
                files.append(SourceFile.read(candidate))
            except SyntaxError:
                continue
    return Project(files)
