"""Function-level control-flow graphs over the stdlib AST.

The static rules (:mod:`.sda`, :mod:`.acd`) need *paths*, not just
syntax: "a store can reach the commit marker with no fence on some
path" is a reachability question. This module lowers one
``FunctionDef`` / ``AsyncFunctionDef`` into a statement-level CFG:

* one :class:`Node` per executed simple statement (compound statements
  contribute their header expression — an ``if`` test, a loop iterator,
  a ``with`` context expression — as the node);
* **normal edges** follow sequential/branch/loop control flow;
* **exception edges** (``Node.raises_to``) model "this statement may
  raise": they target the innermost enclosing handler dispatch, or the
  synthetic :attr:`CFG.raise_exit` when nothing encloses it;
* ``try/finally``, ``with`` and ``async with`` route *all* exits
  (normal, exceptional, ``return``/``break``/``continue``) through the
  finalizer, which is what makes the lock-release rule (ACD002) accept
  the canonical ``acquire(); try: ... finally: release()`` pattern and
  reject the bare one;
* synthetic **with-exit** nodes carry the implicit ``__exit__`` call of
  a ``with`` block so context-managed locks release on every path.

The graph deliberately over-approximates feasibility (both branch arms
are always possible, every call may raise). That is the right
direction for "may reach a bad state on some path" rules; rules that
need a must-property intersect over paths instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Union

__all__ = ["CFG", "Node", "build_cfg", "statement_calls",
           "FunctionNode"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Node kinds. ``stmt`` nodes carry a real AST statement; the others
#: are synthetic control points.
ENTRY = "entry"
EXIT = "exit"            # normal return / fall-off-the-end
RAISE_EXIT = "raise"     # an exception escaped the function
STMT = "stmt"
WITH_EXIT = "with-exit"  # the implicit __exit__ of a with block
DISPATCH = "dispatch"    # exception dispatch point of a try block


class Node:
    """One CFG node: a statement (or synthetic control point) plus its
    outgoing normal and exceptional edges."""

    __slots__ = ("index", "kind", "stmt", "succ", "raises_to",
                 "context_expr", "is_async_with")

    def __init__(self, index: int, kind: str,
                 stmt: Optional[ast.AST] = None) -> None:
        self.index = index
        self.kind = kind
        self.stmt = stmt
        self.succ: List[int] = []
        self.raises_to: List[int] = []
        #: For WITH_EXIT nodes: the managed context expression (the
        #: lock being released); for STMT nodes of With headers: the
        #: same expression at entry.
        self.context_expr: Optional[ast.expr] = None
        self.is_async_with = False

    @property
    def line(self) -> int:
        node = self.stmt if self.stmt is not None else self.context_expr
        return getattr(node, "lineno", 0)

    def __repr__(self) -> str:
        return (f"Node({self.index}, {self.kind}, "
                f"line={self.line}, succ={self.succ}, "
                f"raises_to={self.raises_to})")


class CFG:
    """The control-flow graph of one function."""

    __slots__ = ("func", "nodes", "entry", "exit", "raise_exit")

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.nodes: List[Node] = []
        self.entry = self._new(ENTRY).index
        self.exit = self._new(EXIT).index
        self.raise_exit = self._new(RAISE_EXIT).index

    def _new(self, kind: str, stmt: Optional[ast.AST] = None) -> Node:
        node = Node(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        return node

    def successors(self, index: int) -> Iterator[int]:
        node = self.nodes[index]
        yield from node.succ
        yield from node.raises_to

    def exits(self) -> List[int]:
        """Both exit nodes (normal and exceptional)."""
        return [self.exit, self.raise_exit]


class _LoopFrame:
    __slots__ = ("continue_target", "breaks")

    def __init__(self, continue_target: int) -> None:
        self.continue_target = continue_target
        self.breaks: List[int] = []


class _FinallyFrame:
    """One pending ``finally`` (or with-exit) block: abnormal exits
    inside its protected region divert here, then continue to every
    recorded continuation."""

    __slots__ = ("entry", "continuations")

    def __init__(self, entry: int) -> None:
        self.entry = entry
        self.continuations: Set[int] = set()


class _Builder:
    def __init__(self, func: FunctionNode) -> None:
        self.cfg = CFG(func)
        #: Innermost-last stacks.
        self.exc_targets: List[int] = [self.cfg.raise_exit]
        self.loops: List[_LoopFrame] = []
        self.finallies: List[_FinallyFrame] = []

    # -- plumbing -------------------------------------------------------

    def _connect(self, frontier: Sequence[int], target: int) -> None:
        for index in frontier:
            succ = self.cfg.nodes[index].succ
            if target not in succ:
                succ.append(target)

    def _stmt_node(self, stmt: ast.stmt, frontier: Sequence[int],
                   may_raise: bool = True) -> Node:
        node = self.cfg._new(STMT, stmt)
        self._connect(frontier, node.index)
        if may_raise:
            node.raises_to.append(self.exc_targets[-1])
        return node

    def _divert(self, node: Node, final_target: int) -> None:
        """Route an abnormal exit (return/break/continue) through any
        pending finally blocks, ultimately reaching ``final_target``."""
        if self.finallies:
            frame = self.finallies[-1]
            node.succ.append(frame.entry)
            frame.continuations.add(final_target)
        else:
            node.succ.append(final_target)

    # -- statement lowering ---------------------------------------------

    def lower_body(self, stmts: Sequence[ast.stmt],
                   frontier: List[int]) -> List[int]:
        for stmt in stmts:
            frontier = self.lower(stmt, frontier)
        return frontier

    def lower(self, stmt: ast.stmt,
              frontier: List[int]) -> List[int]:
        handler = getattr(self, f"_lower_{type(stmt).__name__}", None)
        if handler is not None:
            return handler(stmt, frontier)
        # Simple statement (Expr, Assign, AugAssign, AnnAssign, Assert,
        # Delete, Import, Global, Nonlocal, Pass, nested def/class, ...).
        node = self._stmt_node(stmt, frontier)
        return [node.index]

    def _lower_Return(self, stmt: ast.Return,
                      frontier: List[int]) -> List[int]:
        node = self._stmt_node(stmt, frontier)
        self._divert(node, self.cfg.exit)
        return []

    def _lower_Raise(self, stmt: ast.Raise,
                     frontier: List[int]) -> List[int]:
        self._stmt_node(stmt, frontier)
        return []       # only the exception edge leaves a raise

    def _lower_Break(self, stmt: ast.Break,
                     frontier: List[int]) -> List[int]:
        node = self._stmt_node(stmt, frontier, may_raise=False)
        if self.loops:
            self.loops[-1].breaks.append(node.index)
        return []

    def _lower_Continue(self, stmt: ast.Continue,
                        frontier: List[int]) -> List[int]:
        node = self._stmt_node(stmt, frontier, may_raise=False)
        if self.loops:
            node.succ.append(self.loops[-1].continue_target)
        return []

    def _lower_If(self, stmt: ast.If,
                  frontier: List[int]) -> List[int]:
        test = self._stmt_node(stmt, frontier)
        then_frontier = self.lower_body(stmt.body, [test.index])
        if stmt.orelse:
            else_frontier = self.lower_body(stmt.orelse, [test.index])
        else:
            else_frontier = [test.index]
        return then_frontier + else_frontier

    def _lower_While(self, stmt: ast.While,
                     frontier: List[int]) -> List[int]:
        test = self._stmt_node(stmt, frontier)
        frame = _LoopFrame(test.index)
        self.loops.append(frame)
        body_frontier = self.lower_body(stmt.body, [test.index])
        self.loops.pop()
        self._connect(body_frontier, test.index)
        out = list(frame.breaks)
        infinite = (isinstance(stmt.test, ast.Constant)
                    and bool(stmt.test.value))
        if not infinite:
            out.append(test.index)
        if stmt.orelse:
            out = self.lower_body(stmt.orelse, out) + frame.breaks
        return out

    def _lower_For(self, stmt: Union[ast.For, ast.AsyncFor],
                   frontier: List[int]) -> List[int]:
        head = self._stmt_node(stmt, frontier)
        frame = _LoopFrame(head.index)
        self.loops.append(frame)
        body_frontier = self.lower_body(stmt.body, [head.index])
        self.loops.pop()
        self._connect(body_frontier, head.index)
        out = [head.index] + frame.breaks
        if stmt.orelse:
            out = self.lower_body(stmt.orelse, [head.index]) \
                + frame.breaks
        return out

    _lower_AsyncFor = _lower_For

    def _lower_With(self, stmt: Union[ast.With, ast.AsyncWith],
                    frontier: List[int]) -> List[int]:
        head = self._stmt_node(stmt, frontier)
        head.context_expr = stmt.items[0].context_expr
        head.is_async_with = isinstance(stmt, ast.AsyncWith)
        exit_node = self.cfg._new(WITH_EXIT)
        exit_node.context_expr = stmt.items[0].context_expr
        exit_node.is_async_with = head.is_async_with
        # Every exit of the body — normal, exceptional, or a diverted
        # return/break/continue — runs __exit__ first.
        frame = _FinallyFrame(exit_node.index)
        self.finallies.append(frame)
        self.exc_targets.append(exit_node.index)
        body_frontier = self.lower_body(stmt.body, [head.index])
        self.exc_targets.pop()
        self.finallies.pop()
        self._connect(body_frontier, exit_node.index)
        # Exceptions propagate onward after __exit__ runs, and diverted
        # exits continue to their recorded targets.
        exit_node.raises_to.append(self.exc_targets[-1])
        for continuation in sorted(frame.continuations):
            self._route_continuation(exit_node, continuation)
        return [exit_node.index]

    _lower_AsyncWith = _lower_With

    def _route_continuation(self, node: Node,
                            continuation: int) -> None:
        """A finalizer finished for a diverted return/break/continue:
        chain through the next enclosing finally, if any."""
        if self.finallies:
            frame = self.finallies[-1]
            if continuation != frame.entry:
                frame.continuations.add(continuation)
                if frame.entry not in node.succ:
                    node.succ.append(frame.entry)
                return
        if continuation not in node.succ:
            node.succ.append(continuation)

    def _lower_Try(self, stmt: ast.Try,
                   frontier: List[int]) -> List[int]:
        if stmt.finalbody:
            return self._lower_try_finally(stmt, frontier)
        dispatch = self.cfg._new(DISPATCH)
        # Body: exceptions go to the dispatch node.
        self.exc_targets.append(dispatch.index)
        body_frontier = self.lower_body(stmt.body, list(frontier))
        if stmt.orelse:
            body_frontier = self.lower_body(stmt.orelse, body_frontier)
        self.exc_targets.pop()
        # Handlers run under the *outer* exception target (an exception
        # raised inside a handler propagates out); an exception nothing
        # handles also propagates out.
        dispatch.raises_to.append(self.exc_targets[-1])
        handler_frontiers: List[int] = []
        for handler in stmt.handlers:
            handler_frontiers += self.lower_body(
                handler.body, [dispatch.index])
        return body_frontier + handler_frontiers

    def _lower_try_finally(self, stmt: ast.Try,
                           frontier: List[int]) -> List[int]:
        fin_entry = self.cfg._new(DISPATCH)
        frame = _FinallyFrame(fin_entry.index)
        self.finallies.append(frame)
        dispatch = self.cfg._new(DISPATCH)
        self.exc_targets.append(dispatch.index)
        body_frontier = self.lower_body(stmt.body, list(frontier))
        if stmt.orelse:
            body_frontier = self.lower_body(stmt.orelse, body_frontier)
        self.exc_targets.pop()
        # An exception nothing handles still runs the finally, then
        # continues to the outer exception target.
        dispatch.raises_to.append(fin_entry.index)
        frame.continuations.add(self.exc_targets[-1])
        # An exception raised *inside* a handler runs the finally too.
        self.exc_targets.append(fin_entry.index)
        handler_frontiers: List[int] = []
        for handler in stmt.handlers:
            handler_frontiers += self.lower_body(
                handler.body, [dispatch.index])
        self.exc_targets.pop()
        self.finallies.pop()
        self._connect(body_frontier + handler_frontiers,
                      fin_entry.index)
        fin_frontier = self.lower_body(stmt.finalbody,
                                       [fin_entry.index])
        for continuation in sorted(frame.continuations):
            for index in fin_frontier:
                self._route_continuation(self.cfg.nodes[index],
                                         continuation)
        return fin_frontier


def build_cfg(func: FunctionNode) -> CFG:
    """Lower one function body into its CFG."""
    builder = _Builder(func)
    frontier = builder.lower_body(func.body, [builder.cfg.entry])
    builder._connect(frontier, builder.cfg.exit)
    return builder.cfg


class _EventWalker:
    """Yield the calls/awaits of one statement in (approximate)
    evaluation order, skipping nested function/class bodies — those
    execute later, under their own CFG."""

    _SKIP = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
             ast.ClassDef)

    def walk(self, stmt: ast.AST) -> Iterator[ast.AST]:
        # Assignments evaluate their value before binding targets.
        if isinstance(stmt, ast.Assign):
            yield from self._expr(stmt.value)
            return
        if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if stmt.value is not None:
                yield from self._expr(stmt.value)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            yield from self._expr(stmt.test)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield from self._expr(stmt.iter)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                yield from self._expr(item.context_expr)
            return
        yield from self._expr(stmt)

    def _expr(self, node: ast.AST) -> Iterator[ast.AST]:
        if isinstance(node, self._SKIP):
            return
        if isinstance(node, ast.Await):
            yield from self._expr(node.value)
            yield node
            return
        if isinstance(node, ast.Call):
            yield from self._expr(node.func)
            for arg in node.args:
                yield from self._expr(arg)
            for keyword in node.keywords:
                yield from self._expr(keyword.value)
            yield node
            return
        for child in ast.iter_child_nodes(node):
            yield from self._expr(child)


_WALKER = _EventWalker()


def statement_calls(stmt: ast.AST) -> List[ast.AST]:
    """The :class:`ast.Call` and :class:`ast.Await` nodes a statement
    evaluates, innermost-first (evaluation order), excluding nested
    function/lambda/class bodies."""
    return list(_WALKER.walk(stmt))
