"""Analytical cost model for NVM writes per operation (Appendix A).

Table 3 of the paper estimates the amount of data written to NVM per
successful insert / update / delete for each engine, split into three
categories: memory (table storage writes), log, and table (durable
table-structure writes). Notation:

* ``T`` — tuple size (table-dependent);
* ``F`` / ``V`` — sizes of the fixed-length and variable-length fields
  the canonical update modifies;
* ``p`` — pointer size (8 bytes);
* ``B`` — CoW B+tree node size;
* ``theta`` — write amplification factor of the log-structured
  engines' compaction;
* ``epsilon`` — small fixed-length status writes (slot states etc.).

For the CoW engines two cases exist depending on whether the affected
node already has a copy in the dirty directory; this module reports the
*fresh-copy* (worst) case, which is what the bench compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

POINTER_SIZE = 8


@dataclass(frozen=True)
class CostModelParams:
    """Inputs of the Table 3 formulas."""

    tuple_size: int                 # T
    fixed_field_size: int           # F
    varlen_field_size: int          # V
    cow_node_size: int = 4096       # B
    write_amplification: float = 2.0  # theta
    epsilon: int = 1                # status-byte writes
    pointer_size: int = POINTER_SIZE  # p


@dataclass(frozen=True)
class OperationCost:
    """Bytes written to NVM by one operation, per category."""

    memory: float
    log: float
    table: float

    @property
    def total(self) -> float:
        return self.memory + self.log + self.table


def engine_cost(engine: str, operation: str,
                params: CostModelParams) -> OperationCost:
    """Table 3 entry for ``engine`` x ``operation``.

    ``engine`` is one of the six canonical names; ``operation`` is
    "insert", "update", or "delete".
    """
    T = params.tuple_size
    F = params.fixed_field_size
    V = params.varlen_field_size
    B = params.cow_node_size
    theta = params.write_amplification
    p = params.pointer_size
    eps = params.epsilon

    table: Dict[tuple, OperationCost] = {
        ("inp", "insert"): OperationCost(T, T, T),
        ("inp", "update"): OperationCost(F + V, 2 * (F + V), F + V),
        ("inp", "delete"): OperationCost(eps, T, eps),
        ("cow", "insert"): OperationCost(B + T, 0, B),
        ("cow", "update"): OperationCost(B + F + V, 0, B),
        ("cow", "delete"): OperationCost(B + eps, 0, B),
        ("log", "insert"): OperationCost(T, T, theta * T),
        ("log", "update"): OperationCost(F + V, 2 * (F + V),
                                         theta * (F + V)),
        ("log", "delete"): OperationCost(eps, T, eps),
        ("nvm-inp", "insert"): OperationCost(T, p, p),
        ("nvm-inp", "update"): OperationCost(F + V + p, F + p, 0),
        ("nvm-inp", "delete"): OperationCost(eps, p, eps),
        ("nvm-cow", "insert"): OperationCost(T, 0, B + p),
        ("nvm-cow", "update"): OperationCost(T + F + V, 0, B + p),
        ("nvm-cow", "delete"): OperationCost(eps, 0, B + eps),
        ("nvm-log", "insert"): OperationCost(T, p, theta * T),
        ("nvm-log", "update"): OperationCost(F + V + p, F + p,
                                             theta * (F + p)),
        ("nvm-log", "delete"): OperationCost(eps, p, eps),
    }
    try:
        return table[(engine, operation)]
    except KeyError:
        raise ValueError(
            f"no cost model entry for engine={engine!r}, "
            f"operation={operation!r}") from None


def cost_table(params: CostModelParams) -> Dict[str, Dict[str, OperationCost]]:
    """The full Table 3 as nested dicts: engine -> operation -> cost."""
    engines = ("inp", "cow", "log", "nvm-inp", "nvm-cow", "nvm-log")
    operations = ("insert", "update", "delete")
    return {engine: {operation: engine_cost(engine, operation, params)
                     for operation in operations}
            for engine in engines}
