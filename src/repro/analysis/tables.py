"""Plain-text table formatting for the benchmark harness output."""

from __future__ import annotations

from typing import Any, List, Sequence


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Fixed-width table with right-aligned numeric columns."""
    rendered: List[List[str]] = [[_render(cell) for cell in row]
                                 for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            parts.append(cell.rjust(widths[index]) if index else
                         cell.ljust(widths[index]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in rendered)
    return "\n".join(lines)
