"""Process-pool experiment scheduler: fan a sweep out across cores.

The paper's evaluation grid — engines x workload configurations x NVM
latencies — is embarrassingly parallel: every point is an independent
deterministic simulation. :func:`run_sweep` executes any list of
:class:`~repro.harness.spec.ExperimentSpec` points across up to
``jobs`` worker processes and merges the results **deterministically:
outcomes are ordered by spec position, never by completion order**, so
a parallel sweep is value-identical to the serial baseline.

Each point gets:

* **crash isolation** — a worker that dies (OOM, segfault, ``os._exit``)
  marks only its own point failed; the sweep continues;
* **a timeout** — ``timeout_s`` terminates a stuck worker and fails the
  point;
* **retries** — ``retries=N`` re-runs a failed/crashed/timed-out point
  up to ``N`` more times with exponential backoff before marking it
  failed; :attr:`PointOutcome.attempts` records how many runs it took;
* **observability artifacts** — with ``artifacts_dir`` (or
  ``spec.observe``), the point runs under its own
  :class:`~repro.obs.session.ObservabilitySession`; its trace JSONL and
  metrics are written to per-point files named by ``spec.slug()``, and
  a merged ``summary.json`` describes the whole sweep.

Specs are what cross the process boundary (pickled into the worker);
results, and optionally the detached per-point session, come back over
a pipe. ``jobs=1`` runs everything in-process — same code path, same
results, no processes.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SweepError
from ..obs.session import ObservabilitySession
from .runner import ExperimentResult, run
from .spec import ExperimentSpec

__all__ = ["PointOutcome", "run_sweep", "results_or_raise",
           "merged_session", "write_sweep_summary", "SUMMARY_FILENAME"]

SUMMARY_FILENAME = "summary.json"

#: Seconds between scheduler polls for worker completion/timeout.
_POLL_INTERVAL_S = 0.05


@dataclass
class PointOutcome:
    """What happened to one spec of a sweep."""

    spec: ExperimentSpec
    result: Optional[ExperimentResult] = None
    #: Human-readable failure ("TypeError: ...", "worker crashed
    #: (exit code -11)", "timeout after 60s"); ``None`` on success.
    error: Optional[str] = None
    #: Host (wall-clock) seconds the point took, including worker
    #: startup and every retry — this is what ``--jobs`` shrinks.
    host_seconds: float = 0.0
    #: How many times the point was launched (1 = no retries needed).
    attempts: int = 0
    #: The point's detached observability session (when observed).
    session: Optional[ObservabilitySession] = None
    #: Artifact kind -> file path written for this point.
    artifacts: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None


def _execute_point(spec: ExperimentSpec, observe: bool
                   ) -> Tuple[ExperimentResult,
                              Optional[ObservabilitySession]]:
    """Run one spec (in whatever process this is), optionally under a
    fresh per-point observability session.

    A spec that defines its own ``execute(obs=...)`` (e.g. a
    fault-injection campaign point) runs through it; plain
    :class:`ExperimentSpec` points go through :func:`run`."""
    obs = ObservabilitySession() \
        if (observe or getattr(spec, "observe", False)) else None
    execute = getattr(spec, "execute", None)
    if callable(execute):
        result = execute(obs=obs)
    else:
        result = run(spec, obs=obs)
    return result, obs


def _point_worker(spec: ExperimentSpec, observe: bool, conn) -> None:
    """Worker-process entry: run the point, ship back
    ``(result, session, error)`` over the pipe."""
    try:
        result, session = _execute_point(spec, observe)
        conn.send((result, session, None))
    except BaseException as exc:  # isolate *any* point failure
        message = f"{type(exc).__name__}: {exc}"
        try:
            conn.send((None, None, message))
        except Exception:
            pass  # parent will see EOF and report a crash
    finally:
        conn.close()


def _backoff_s(retry_backoff_s: float, attempt: int) -> float:
    """Exponential backoff before launch number ``attempt + 1``."""
    return retry_backoff_s * (2 ** (attempt - 1))


def _run_serial(outcomes: List[PointOutcome], observe: bool,
                retries: int, retry_backoff_s: float) -> None:
    for outcome in outcomes:
        for attempt in range(retries + 1):
            if attempt:
                time.sleep(_backoff_s(retry_backoff_s, attempt))
            outcome.attempts += 1
            started = time.perf_counter()
            try:
                outcome.result, outcome.session = _execute_point(
                    outcome.spec, observe)
                outcome.error = None
            except Exception as exc:
                outcome.error = f"{type(exc).__name__}: {exc}"
            outcome.host_seconds += time.perf_counter() - started
            if outcome.error is None:
                break


def _run_parallel(outcomes: List[PointOutcome], jobs: int,
                  observe: bool, timeout_s: Optional[float],
                  retries: int, retry_backoff_s: float) -> None:
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    #: (outcome index, earliest perf_counter() it may launch).
    pending = deque((index, 0.0) for index in range(len(outcomes)))
    running: Dict[object, Tuple[int, object, float]] = {}

    def _pop_ready(now: float) -> Optional[int]:
        for position, (index, ready_at) in enumerate(pending):
            if ready_at <= now:
                del pending[position]
                return index
        return None

    def _fail_or_requeue(index: int, error: str) -> None:
        outcome = outcomes[index]
        outcome.error = error
        if outcome.attempts <= retries:
            delay = _backoff_s(retry_backoff_s, outcome.attempts)
            pending.append((index, time.perf_counter() + delay))

    def _finish(conn) -> None:
        index, process, started = running.pop(conn)
        outcome = outcomes[index]
        try:
            result, session, error = conn.recv()
        except (EOFError, OSError):
            process.join()
            result, session = None, None
            error = f"worker crashed (exit code {process.exitcode})"
        outcome.result = result
        outcome.session = session
        outcome.host_seconds += time.perf_counter() - started
        conn.close()
        process.join()
        if error is None:
            outcome.error = None
        else:
            _fail_or_requeue(index, error)

    while pending or running:
        while pending and len(running) < jobs:
            index = _pop_ready(time.perf_counter())
            if index is None:
                break  # every pending point is backing off
            outcomes[index].attempts += 1
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_point_worker,
                args=(outcomes[index].spec, observe, child_conn),
                daemon=True)
            process.start()
            child_conn.close()
            running[parent_conn] = (index, process,
                                    time.perf_counter())
        # A closed pipe (dead worker) is also "ready" — recv then
        # raises EOFError and the point is marked crashed. With no
        # running workers (all pending points backing off) this just
        # sleeps one poll interval.
        for conn in _connection_wait(list(running),
                                     timeout=_POLL_INTERVAL_S):
            _finish(conn)
        if timeout_s is None:
            continue
        now = time.perf_counter()
        for conn, (index, process, started) in list(running.items()):
            if now - started <= timeout_s:
                continue
            running.pop(conn)
            process.terminate()
            process.join()
            conn.close()
            outcomes[index].host_seconds += now - started
            _fail_or_requeue(index, f"timeout after {timeout_s:g}s")


def run_sweep(specs: Sequence[ExperimentSpec], jobs: int = 1,
              timeout_s: Optional[float] = None,
              artifacts_dir: Optional[str] = None,
              observe: bool = False, retries: int = 0,
              retry_backoff_s: float = 0.05) -> List[PointOutcome]:
    """Execute every spec; returns one :class:`PointOutcome` per spec,
    **in spec order** regardless of completion order.

    ``jobs`` caps concurrent worker processes (``1`` = in-process
    serial). ``timeout_s`` bounds each point's host runtime (parallel
    mode only — a serial in-process point cannot be interrupted).
    ``retries`` re-launches a failed point up to that many extra times,
    waiting ``retry_backoff_s * 2**(attempt - 1)`` before each retry;
    other points keep running during the backoff.
    ``observe`` (or ``spec.observe``, or passing ``artifacts_dir``)
    attaches a per-point ObservabilitySession; ``artifacts_dir``
    additionally writes per-point trace/metrics files plus a merged
    ``summary.json``.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    outcomes = [PointOutcome(spec=spec) for spec in specs]
    observe = observe or artifacts_dir is not None
    if jobs <= 1 or len(outcomes) <= 1:
        _run_serial(outcomes, observe, retries, retry_backoff_s)
    else:
        _run_parallel(outcomes, jobs, observe, timeout_s, retries,
                      retry_backoff_s)
    if artifacts_dir is not None:
        _write_artifacts(outcomes, artifacts_dir)
    return outcomes


def results_or_raise(outcomes: Sequence[PointOutcome]
                     ) -> List[ExperimentResult]:
    """The results of a fully-successful sweep, in spec order; raises
    :class:`~repro.errors.SweepError` naming every failed point."""
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        details = "; ".join(
            f"{outcome.spec.slug()}: {outcome.error}"
            for outcome in failures)
        raise SweepError(
            f"{len(failures)}/{len(outcomes)} sweep points failed: "
            f"{details}")
    return [outcome.result for outcome in outcomes]


def merged_session(outcomes: Sequence[PointOutcome]
                   ) -> ObservabilitySession:
    """All per-point sessions merged into one, in spec order — export
    it exactly like a serial shared session."""
    merged = ObservabilitySession()
    for outcome in outcomes:
        if outcome.session is not None:
            merged.merge(outcome.session)
    return merged


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------

def _write_artifacts(outcomes: Sequence[PointOutcome],
                     artifacts_dir: str) -> None:
    os.makedirs(artifacts_dir, exist_ok=True)
    for index, outcome in enumerate(outcomes):
        if outcome.session is None:
            continue
        stem = os.path.join(artifacts_dir,
                            f"{index:04d}-{outcome.spec.slug()}")
        trace_path = f"{stem}.trace.jsonl"
        outcome.session.export_trace(trace_path)
        outcome.artifacts["trace"] = trace_path
        metrics_path = f"{stem}.metrics.prom"
        outcome.session.export_metrics(metrics_path)
        outcome.artifacts["metrics"] = metrics_path
    write_sweep_summary(outcomes,
                        os.path.join(artifacts_dir, SUMMARY_FILENAME))


def write_sweep_summary(outcomes: Sequence[PointOutcome],
                        path: str) -> str:
    """Write the merged sweep summary JSON (one entry per point, in
    spec order, each self-describing: full spec + result + artifacts);
    returns ``path``."""
    points = []
    for outcome in outcomes:
        points.append({
            "spec": outcome.spec.to_dict(),
            "ok": outcome.ok,
            "error": outcome.error,
            "attempts": outcome.attempts,
            "host_seconds": outcome.host_seconds,
            "result": (outcome.result.to_dict()
                       if outcome.result is not None else None),
            "artifacts": outcome.artifacts,
        })
    summary = {
        "kind": "repro-sweep-summary",
        "points": points,
        "failed": sum(1 for outcome in outcomes if not outcome.ok),
    }
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(summary, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return path
