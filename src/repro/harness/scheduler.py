"""Process-pool experiment scheduler: fan a sweep out across cores.

The paper's evaluation grid — engines x workload configurations x NVM
latencies — is embarrassingly parallel: every point is an independent
deterministic simulation. :func:`run_sweep` executes any list of
:class:`~repro.harness.spec.ExperimentSpec` points across up to
``jobs`` worker processes and merges the results **deterministically:
outcomes are ordered by spec position, never by completion order**, so
a parallel sweep is value-identical to the serial baseline.

Each point gets:

* **crash isolation** — a worker that dies (OOM, segfault, ``os._exit``)
  marks only its own point failed; the sweep continues;
* **a timeout** — ``timeout_s`` terminates a stuck worker and fails the
  point;
* **retries** — ``retries=N`` re-runs a failed/crashed/timed-out point
  up to ``N`` more times with exponential backoff before marking it
  failed; :attr:`PointOutcome.attempts` records how many runs it took;
* **observability artifacts** — with ``artifacts_dir`` (or
  ``spec.observe``), the point runs under its own
  :class:`~repro.obs.session.ObservabilitySession`; its trace JSONL and
  metrics are written to per-point files named by ``spec.slug()``, and
  a merged ``summary.json`` describes the whole sweep;
* **live telemetry** — with a ``bus``
  (:class:`~repro.obs.bus.EventBus`), the scheduler publishes point
  lifecycle events (started / finished / retried / crashed) and workers
  stream phase transitions and progress heartbeats back over the result
  pipe as they run, so a multi-hour sweep is observable from its first
  second (``--live`` and ``--events`` in the CLI).

Specs are what cross the process boundary (pickled into the worker);
telemetry events, then the final result (and optionally the detached
per-point session), come back over a pipe as tagged messages —
``("event", payload)`` interleaved ahead of one ``("done", ...)``.
``jobs=1`` runs everything in-process — same code path, same results,
no processes. Failures carry the full formatted traceback in
:attr:`PointOutcome.error` (``error_summary`` is the one-line digest).
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import signal
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SweepError
from ..obs import bus as _bus
from ..obs.bus import (DEFAULT_HEARTBEAT_S, BusPublisher, EventBus,
                       PipePublisher, TelemetryEvent)
from ..obs.session import ObservabilitySession
from . import ipc
from .runner import ExperimentResult, run
from .spec import ExperimentSpec

__all__ = ["PointOutcome", "run_sweep", "results_or_raise",
           "merged_session", "write_sweep_summary", "SUMMARY_FILENAME"]

SUMMARY_FILENAME = "summary.json"

#: Seconds between scheduler polls for worker completion/timeout.
_POLL_INTERVAL_S = 0.05


def _format_error(exc: BaseException) -> str:
    """The full formatted traceback — sweeps run far from the failure,
    so the outcome must carry everything needed to debug it."""
    return "".join(traceback.format_exception(
        type(exc), exc, exc.__traceback__)).rstrip()


def _error_summary(error: Optional[str]) -> Optional[str]:
    """Last non-blank line of a (possibly multi-line) error — the
    ``TypeError: ...`` headline of a traceback."""
    if not error:
        return error
    for line in reversed(error.splitlines()):
        if line.strip():
            return line.strip()
    return error


@dataclass
class PointOutcome:
    """What happened to one spec of a sweep."""

    spec: ExperimentSpec
    result: Optional[ExperimentResult] = None
    #: Failure description; ``None`` on success. For in-point
    #: exceptions this is the **full formatted traceback**; scheduler
    #: failures read "worker crashed (exit code -11)" / "timeout after
    #: 60s". Use :attr:`error_summary` for one-line displays.
    error: Optional[str] = None
    #: Host (wall-clock) seconds the point took, including worker
    #: startup and every retry — this is what ``--jobs`` shrinks.
    host_seconds: float = 0.0
    #: How many times the point was launched (1 = no retries needed).
    attempts: int = 0
    #: The point's detached observability session (when observed).
    session: Optional[ObservabilitySession] = None
    #: Artifact kind -> file path written for this point.
    artifacts: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def error_summary(self) -> Optional[str]:
        """One-line digest of :attr:`error` (tracebacks collapse to
        their final ``SomeError: ...`` line)."""
        return _error_summary(self.error)


def _execute_point(spec: ExperimentSpec, observe: bool,
                   telemetry=None
                   ) -> Tuple[ExperimentResult,
                              Optional[ObservabilitySession]]:
    """Run one spec (in whatever process this is), optionally under a
    fresh per-point observability session and/or telemetry publisher.

    A spec that defines its own ``execute(obs=...)`` (e.g. a
    fault-injection campaign point) runs through it; plain
    :class:`ExperimentSpec` points go through :func:`run`."""
    obs = ObservabilitySession() \
        if (observe or getattr(spec, "observe", False)) else None
    execute = getattr(spec, "execute", None)
    if callable(execute):
        # Only pass telemetry when live: campaign specs accept it, but
        # minimal test doubles only implement execute(obs=...).
        result = execute(obs=obs, telemetry=telemetry) \
            if telemetry is not None else execute(obs=obs)
    elif telemetry is not None:
        result = run(spec, obs=obs, telemetry=telemetry)
    else:
        result = run(spec, obs=obs)
    return result, obs


def _point_source(index: int, spec: ExperimentSpec) -> str:
    return f"{index:04d}-{spec.slug()}"


def _publish_point(bus: Optional[EventBus], kind: str, index: int,
                   spec: ExperimentSpec, **data) -> None:
    if bus is None:
        return
    bus.publish(kind, source=_point_source(index, spec),
                index=index, engine=getattr(spec, "engine", ""),
                **data)


def _point_finished_data(outcome: PointOutcome) -> Dict[str, object]:
    data: Dict[str, object] = {
        "ok": outcome.ok,
        "attempts": outcome.attempts,
        "host_seconds": outcome.host_seconds,
    }
    if outcome.error is not None:
        data["error"] = outcome.error_summary
    throughput = getattr(outcome.result, "throughput", None)
    if throughput is not None:
        data["throughput"] = throughput
    return data


def _point_worker(spec: ExperimentSpec, observe: bool, conn,
                  telemetry: bool = False,
                  heartbeat_s: float = DEFAULT_HEARTBEAT_S,
                  source: str = "") -> None:
    """Worker-process entry: run the point — streaming telemetry
    events over the pipe when live — then ship back
    ``("done", (result, session, error))``.

    SIGTERM (the scheduler's terminate, or a batch manager reaping the
    tree) is converted to ``SystemExit`` so the worker ships a final
    tagged message and closes its pipe end instead of dying mid-write;
    a Ctrl-C KeyboardInterrupt takes the same path via the
    ``BaseException`` handler."""
    try:
        signal.signal(signal.SIGTERM, lambda *_: sys.exit(143))
    except ValueError:
        pass  # not the main thread (in-process test harnesses)
    publisher = PipePublisher(conn, source=source,
                              heartbeat_s=heartbeat_s) \
        if telemetry else None
    try:
        result, session = _execute_point(spec, observe) \
            if publisher is None \
            else _execute_point(spec, observe, publisher)
        ipc.send_done(conn, (result, session, None))
    except BaseException as exc:  # isolate *any* point failure
        try:
            ipc.send_done(conn, (None, None, _format_error(exc)))
        except Exception:
            pass  # parent will see EOF and report a crash
    finally:
        conn.close()


def _backoff_s(retry_backoff_s: float, attempt: int) -> float:
    """Exponential backoff before launch number ``attempt + 1``."""
    return retry_backoff_s * (2 ** (attempt - 1))


@contextlib.contextmanager
def _sigterm_raises_interrupt():
    """For the duration of a sweep, a SIGTERM to the coordinator takes
    the same clean-shutdown path as Ctrl-C (terminate + drain + reap
    workers) instead of killing the process with children attached.
    A no-op off the main thread, where signals cannot be installed."""
    def _raise(signum, frame):
        raise KeyboardInterrupt("SIGTERM")
    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except ValueError:
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _run_serial(outcomes: List[PointOutcome], observe: bool,
                retries: int, retry_backoff_s: float,
                bus: Optional[EventBus],
                heartbeat_s: float) -> None:
    for index, outcome in enumerate(outcomes):
        spec = outcome.spec
        publisher = None
        if bus is not None:
            publisher = BusPublisher(bus,
                                     source=_point_source(index, spec),
                                     heartbeat_s=heartbeat_s)
        for attempt in range(retries + 1):
            if attempt:
                time.sleep(_backoff_s(retry_backoff_s, attempt))
            outcome.attempts += 1
            _publish_point(bus, _bus.POINT_STARTED, index, spec,
                           attempt=outcome.attempts)
            started = time.perf_counter()
            try:
                outcome.result, outcome.session = \
                    _execute_point(spec, observe) if publisher is None \
                    else _execute_point(spec, observe, publisher)
                outcome.error = None
            except Exception as exc:
                outcome.error = _format_error(exc)
            outcome.host_seconds += time.perf_counter() - started
            if outcome.error is None:
                break
            if attempt < retries:
                _publish_point(bus, _bus.POINT_RETRIED, index, spec,
                               attempt=outcome.attempts,
                               error=outcome.error_summary)
        _publish_point(bus, _bus.POINT_FINISHED, index, spec,
                       **_point_finished_data(outcome))


def _run_parallel(outcomes: List[PointOutcome], jobs: int,
                  observe: bool, timeout_s: Optional[float],
                  retries: int, retry_backoff_s: float,
                  bus: Optional[EventBus],
                  heartbeat_s: float) -> None:
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    #: (outcome index, earliest perf_counter() it may launch).
    pending = deque((index, 0.0) for index in range(len(outcomes)))
    running: Dict[object, Tuple[int, object, float]] = {}

    def _pop_ready(now: float) -> Optional[int]:
        for position, (index, ready_at) in enumerate(pending):
            if ready_at <= now:
                del pending[position]
                return index
        return None

    def _fail_or_requeue(index: int, error: str) -> None:
        outcome = outcomes[index]
        outcome.error = error
        if outcome.attempts <= retries:
            _publish_point(bus, _bus.POINT_RETRIED, index,
                           outcome.spec, attempt=outcome.attempts,
                           error=outcome.error_summary)
            delay = _backoff_s(retry_backoff_s, outcome.attempts)
            pending.append((index, time.perf_counter() + delay))
        else:
            _publish_point(bus, _bus.POINT_FINISHED, index,
                           outcome.spec,
                           **_point_finished_data(outcome))

    def _finish(conn, payload) -> None:
        """Handle a worker's final message (or its death when
        ``payload`` is None)."""
        index, process, started = running.pop(conn)
        outcome = outcomes[index]
        if payload is None:
            process.join()
            result, session = None, None
            error: Optional[str] = \
                f"worker crashed (exit code {process.exitcode})"
            _publish_point(bus, _bus.POINT_CRASHED, index,
                           outcome.spec, exitcode=process.exitcode,
                           attempt=outcome.attempts)
        else:
            result, session, error = payload
        outcome.result = result
        outcome.session = session
        outcome.host_seconds += time.perf_counter() - started
        conn.close()
        process.join()
        if error is None:
            outcome.error = None
            _publish_point(bus, _bus.POINT_FINISHED, index,
                           outcome.spec,
                           **_point_finished_data(outcome))
        else:
            _fail_or_requeue(index, error)

    def _service(conn) -> None:
        """One readable pipe: either a streamed telemetry event
        (re-publish and keep the worker running) or the final tagged
        result / an EOF from a dead worker."""
        try:
            tag, payload = ipc.recv(conn)
        except (EOFError, OSError):
            _finish(conn, None)
            return
        if tag == ipc.TAG_EVENT:
            if bus is not None:
                bus.publish(TelemetryEvent.from_dict(payload))
            return
        _finish(conn, payload)

    def _abort(now: float) -> None:
        """Interrupted (Ctrl-C / SIGTERM): terminate every worker,
        drain what each already piped out — streamed telemetry is
        re-published, and a final result that raced the interrupt is
        kept — then reap the processes so none are orphaned."""
        pending.clear()
        for conn, (index, process, started) in list(running.items()):
            process.terminate()
            outcome = outcomes[index]
            with contextlib.suppress(EOFError, OSError):
                while conn.poll(0.2):
                    tag, payload = ipc.recv(conn)
                    if tag == ipc.TAG_EVENT:
                        if bus is not None:
                            bus.publish(TelemetryEvent.from_dict(payload))
                    elif tag == ipc.TAG_DONE:
                        outcome.result, outcome.session, outcome.error \
                            = payload
            conn.close()
            process.join(5.0)
            if process.is_alive():
                process.kill()
                process.join(1.0)
            outcome.host_seconds += now - started
            if outcome.result is None and outcome.error is None:
                outcome.error = "interrupted"
        running.clear()

    try:
        while pending or running:
            while pending and len(running) < jobs:
                index = _pop_ready(time.perf_counter())
                if index is None:
                    break  # every pending point is backing off
                outcome = outcomes[index]
                outcome.attempts += 1
                _publish_point(bus, _bus.POINT_STARTED, index,
                               outcome.spec, attempt=outcome.attempts)
                parent_conn, child_conn = context.Pipe(duplex=False)
                process = context.Process(
                    target=_point_worker,
                    args=(outcome.spec, observe, child_conn,
                          bus is not None, heartbeat_s,
                          _point_source(index, outcome.spec)),
                    daemon=True)
                process.start()
                child_conn.close()
                running[parent_conn] = (index, process,
                                        time.perf_counter())
            # A closed pipe (dead worker) is also "ready" — recv then
            # raises EOFError and the point is marked crashed. With no
            # running workers (all pending points backing off) this
            # just sleeps one poll interval.
            for conn in _connection_wait(list(running),
                                         timeout=_POLL_INTERVAL_S):
                _service(conn)
            if timeout_s is None:
                continue
            now = time.perf_counter()
            for conn, (index, process, started) in list(running.items()):
                if now - started <= timeout_s:
                    continue
                running.pop(conn)
                process.terminate()
                process.join()
                conn.close()
                outcomes[index].host_seconds += now - started
                _fail_or_requeue(index, f"timeout after {timeout_s:g}s")
    except BaseException:
        _abort(time.perf_counter())
        raise


def run_sweep(specs: Sequence[ExperimentSpec], jobs: int = 1,
              timeout_s: Optional[float] = None,
              artifacts_dir: Optional[str] = None,
              observe: bool = False, retries: int = 0,
              retry_backoff_s: float = 0.05,
              bus: Optional[EventBus] = None,
              heartbeat_s: float = DEFAULT_HEARTBEAT_S
              ) -> List[PointOutcome]:
    """Execute every spec; returns one :class:`PointOutcome` per spec,
    **in spec order** regardless of completion order.

    ``jobs`` caps concurrent worker processes (``1`` = in-process
    serial). ``timeout_s`` bounds each point's host runtime (parallel
    mode only — a serial in-process point cannot be interrupted).
    ``retries`` re-launches a failed point up to that many extra times,
    waiting ``retry_backoff_s * 2**(attempt - 1)`` before each retry;
    other points keep running during the backoff.
    ``observe`` (or ``spec.observe``, or passing ``artifacts_dir``)
    attaches a per-point ObservabilitySession; ``artifacts_dir``
    additionally writes per-point trace/metrics files plus a merged
    ``summary.json``.
    ``bus`` streams live telemetry: the scheduler publishes point
    lifecycle events and every point publishes phase transitions and
    rate-limited progress heartbeats (at most one per ``heartbeat_s``
    wall seconds per point). Telemetry is wall-clock side-band data —
    the merged *results* stay byte-identical with or without it.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    outcomes = [PointOutcome(spec=spec) for spec in specs]
    observe = observe or artifacts_dir is not None
    started = time.perf_counter()
    if bus is not None:
        bus.publish(_bus.SWEEP_STARTED, source="sweep",
                    points=len(outcomes), jobs=jobs)
    interrupted = False
    try:
        with _sigterm_raises_interrupt():
            if jobs <= 1 or len(outcomes) <= 1:
                _run_serial(outcomes, observe, retries,
                            retry_backoff_s, bus, heartbeat_s)
            else:
                _run_parallel(outcomes, jobs, observe, timeout_s,
                              retries, retry_backoff_s, bus,
                              heartbeat_s)
    except (KeyboardInterrupt, SystemExit):
        interrupted = True
        for outcome in outcomes:
            if outcome.result is None and outcome.error is None:
                outcome.error = "interrupted"
        raise
    finally:
        # The closing accounting record is published even on an
        # interrupt, so a persisted event log always balances.
        if bus is not None:
            bus.publish(_bus.SWEEP_FINISHED, source="sweep",
                        points=len(outcomes),
                        failed=sum(1 for o in outcomes if not o.ok),
                        retries=sum(max(0, o.attempts - 1)
                                    for o in outcomes),
                        host_seconds=time.perf_counter() - started,
                        interrupted=interrupted,
                        **bus.stats())
        if artifacts_dir is not None and not interrupted:
            _write_artifacts(outcomes, artifacts_dir)
    return outcomes


def results_or_raise(outcomes: Sequence[PointOutcome]
                     ) -> List[ExperimentResult]:
    """The results of a fully-successful sweep, in spec order; raises
    :class:`~repro.errors.SweepError` naming every failed point."""
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        details = "; ".join(
            f"{outcome.spec.slug()}: {outcome.error_summary}"
            for outcome in failures)
        raise SweepError(
            f"{len(failures)}/{len(outcomes)} sweep points failed: "
            f"{details}")
    return [outcome.result for outcome in outcomes]


def merged_session(outcomes: Sequence[PointOutcome]
                   ) -> ObservabilitySession:
    """All per-point sessions merged into one, in spec order — export
    it exactly like a serial shared session."""
    merged = ObservabilitySession()
    for outcome in outcomes:
        if outcome.session is not None:
            merged.merge(outcome.session)
    return merged


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------

def _write_artifacts(outcomes: Sequence[PointOutcome],
                     artifacts_dir: str) -> None:
    os.makedirs(artifacts_dir, exist_ok=True)
    for index, outcome in enumerate(outcomes):
        if outcome.session is None:
            continue
        stem = os.path.join(artifacts_dir,
                            f"{index:04d}-{outcome.spec.slug()}")
        trace_path = f"{stem}.trace.jsonl"
        outcome.session.export_trace(trace_path)
        outcome.artifacts["trace"] = trace_path
        metrics_path = f"{stem}.metrics.prom"
        outcome.session.export_metrics(metrics_path)
        outcome.artifacts["metrics"] = metrics_path
    write_sweep_summary(outcomes,
                        os.path.join(artifacts_dir, SUMMARY_FILENAME))


def write_sweep_summary(outcomes: Sequence[PointOutcome],
                        path: str) -> str:
    """Write the merged sweep summary JSON (one entry per point, in
    spec order, each self-describing: full spec + result + artifacts);
    returns ``path``."""
    points = []
    for outcome in outcomes:
        points.append({
            "spec": outcome.spec.to_dict(),
            "ok": outcome.ok,
            "error": outcome.error,
            "attempts": outcome.attempts,
            "host_seconds": outcome.host_seconds,
            "result": (outcome.result.to_dict()
                       if outcome.result is not None else None),
            "artifacts": outcome.artifacts,
        })
    summary = {
        "kind": "repro-sweep-summary",
        "points": points,
        "failed": sum(1 for outcome in outcomes if not outcome.ok),
    }
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(summary, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return path
