"""Workload runners producing the measurements the paper reports.

Measurement protocol (Section 5): the database is loaded first, then
counters are snapshotted, the pre-generated fixed workload runs, and
the deltas are reported — throughput in transactions per *simulated*
second, NVM loads/stores from the device counters, the execution-time
breakdown from the category stats, and the peak storage footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import CacheConfig, EngineConfig, LatencyProfile, PlatformConfig
from ..core.database import Database
from ..obs.session import ObservabilitySession
from ..workloads.tpcc import TPCCConfig, TPCCWorkload
from ..workloads.ycsb import YCSBConfig, YCSBWorkload

#: Default CPU-cache size for experiments. The emulator's 20 MB L3
#: covers ~1% of the paper's 2 GB YCSB database; a small cache keeps a
#: comparable miss structure for the scaled-down datasets.
DEFAULT_CACHE_BYTES = 256 * 1024


def _make_database(engine: str, partitions: int,
                   latency: LatencyProfile,
                   engine_config: Optional[EngineConfig],
                   seed: int, cache_bytes: int) -> Database:
    platform_config = PlatformConfig(
        latency=latency,
        cache=CacheConfig(capacity_bytes=cache_bytes),
        seed=seed)
    return Database(engine=engine, partitions=partitions,
                    platform_config=platform_config,
                    engine_config=engine_config, seed=seed)


@dataclass
class ExperimentResult:
    """Everything one experiment point measures."""

    engine: str
    workload: str
    latency: str
    txns: int
    sim_seconds: float
    nvm_loads: int
    nvm_stores: int
    time_breakdown: Dict[str, float] = field(default_factory=dict)
    storage_breakdown: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)
    #: Per-transaction simulated-latency percentiles (p50/p95/p99/max,
    #: ns); populated only when an observability session is attached.
    latency_percentiles: Optional[Dict[str, float]] = None
    #: Periodic counter samples over the run (see repro.obs.sampler);
    #: populated only when an observability session is attached.
    timeseries: Optional[List[Dict[str, float]]] = None

    @property
    def throughput(self) -> float:
        """Committed transactions per simulated second."""
        if self.sim_seconds == 0:
            return 0.0
        return self.txns / self.sim_seconds


def _category_ns(db: Database) -> Dict[str, float]:
    from ..sim.stats import Category
    totals = {category.value: 0.0 for category in Category}
    for partition in db.partitions:
        for category in Category:
            totals[category.value] += \
                partition.platform.stats.category_ns(category)
    return totals


def _measure(db: Database, run, txns: int, engine: str, workload: str,
             latency_name: str,
             obs: Optional[ObservabilitySession] = None
             ) -> ExperimentResult:
    """Snapshot counters, execute ``run()``, report the deltas
    (profiling starts after the initial load, as in Section 5)."""
    start_ns = db.now_ns
    loads_before = db.nvm_counters()["loads"]
    stores_before = db.nvm_counters()["stores"]
    categories_before = _category_ns(db)
    if obs is not None:
        obs.begin_run(db)
    run()
    # Steady-state accounting: dirty cache lines the run produced are
    # NVM writes it owes — drain them into the measurement window (at
    # the paper's 8M-txn scale eviction does this naturally).
    db.settle()
    obs_stats = obs.end_run(db) if obs is not None else None
    counters = db.nvm_counters()
    categories_after = _category_ns(db)
    deltas = {name: categories_after[name] - categories_before[name]
              for name in categories_after}
    total_delta = sum(deltas.values()) or 1.0
    return ExperimentResult(
        engine=engine,
        workload=workload,
        latency=latency_name,
        txns=txns,
        sim_seconds=(db.now_ns - start_ns) / 1e9,
        nvm_loads=counters["loads"] - loads_before,
        nvm_stores=counters["stores"] - stores_before,
        time_breakdown={name: value / total_delta
                        for name, value in deltas.items()},
        storage_breakdown=db.storage_breakdown(),
        latency_percentiles=(obs_stats["latency_percentiles"]
                             if obs_stats else None),
        timeseries=obs_stats["timeseries"] if obs_stats else None,
    )


def _finish_run(db: Database, result: ExperimentResult,
                obs: Optional[ObservabilitySession],
                crash_recover: bool) -> None:
    """Post-measurement epilogue: optional crash + recovery cycle (so
    recovery-phase spans land in the trace) and session detach."""
    if crash_recover:
        db.crash()
        result.extra["recovery_seconds"] = db.recover()
    if obs is not None:
        obs.detach(db)


def run_ycsb(engine: str, mixture: str, skew: str,
             latency: Optional[LatencyProfile] = None,
             num_tuples: int = 2000, num_txns: int = 2000,
             partitions: int = 1,
             engine_config: Optional[EngineConfig] = None,
             seed: int = 31,
             database: Optional[Database] = None,
             cache_bytes: int = DEFAULT_CACHE_BYTES,
             run_checkpoint_interval: Optional[int] = None,
             obs: Optional[ObservabilitySession] = None,
             crash_recover: bool = False,
             ) -> ExperimentResult:
    """Run one YCSB point; returns its measurements.

    Pass ``database`` to reuse a pre-loaded database (e.g. to run
    several mixtures against one load in the read/write experiments).
    Pass ``obs`` to trace/meter the run; ``crash_recover`` appends a
    crash + recovery cycle *after* the measurement window so recovery
    phases show up in the trace (throughput is unaffected).
    """
    latency = latency or LatencyProfile.dram()
    config = YCSBConfig(num_tuples=num_tuples, mixture=mixture,
                        skew=skew, seed=seed)
    workload_name = f"ycsb/{mixture}/{skew}"
    workload = YCSBWorkload(config, partitions=partitions)
    db = database
    if db is None:
        db = _make_database(engine, partitions, latency, engine_config,
                            seed, cache_bytes)
        if obs is not None:
            obs.attach(db, engine, workload_name)
        workload.load(db)
        # Post-load checkpoint (engines without checkpoints: no-op) so
        # the in-run checkpoint cadence is measured from a clean base.
        db.checkpoint()
    elif obs is not None:
        obs.attach(db, engine, workload_name)
    if run_checkpoint_interval is not None:
        for partition in db.partitions:
            partition.engine.checkpoint_interval_txns = \
                run_checkpoint_interval
    db.settle()
    result = _measure(
        db, lambda: workload.run(db, num_txns), num_txns, engine,
        workload_name, latency.name, obs=obs)
    result.extra["num_tuples"] = num_tuples
    _finish_run(db, result, obs, crash_recover)
    return result


def run_tpcc(engine: str,
             latency: Optional[LatencyProfile] = None,
             tpcc_config: Optional[TPCCConfig] = None,
             num_txns: int = 400, partitions: int = 1,
             engine_config: Optional[EngineConfig] = None,
             seed: int = 47,
             cache_bytes: int = DEFAULT_CACHE_BYTES,
             run_checkpoint_interval: Optional[int] = None,
             obs: Optional[ObservabilitySession] = None,
             crash_recover: bool = False,
             ) -> ExperimentResult:
    """Run one TPC-C point; returns its measurements."""
    latency = latency or LatencyProfile.dram()
    config = tpcc_config or TPCCConfig(seed=seed)
    workload = TPCCWorkload(config, partitions=partitions)
    db = _make_database(engine, partitions, latency, engine_config,
                        seed, cache_bytes)
    if obs is not None:
        obs.attach(db, engine, "tpcc")
    workload.load(db)
    db.checkpoint()
    if run_checkpoint_interval is not None:
        for partition in db.partitions:
            partition.engine.checkpoint_interval_txns = \
                run_checkpoint_interval
    db.settle()
    result = _measure(
        db, lambda: workload.run(db, num_txns), num_txns, engine,
        "tpcc", latency.name, obs=obs)
    _finish_run(db, result, obs, crash_recover)
    return result
