"""Workload runners producing the measurements the paper reports.

Measurement protocol (Section 5): the database is loaded first, then
counters are snapshotted, the pre-generated fixed workload runs, and
the deltas are reported — throughput in transactions per *simulated*
second, NVM loads/stores from the device counters, the execution-time
breakdown from the category stats, and the peak storage footprint.

The single entry point is :func:`run`, which executes one
:class:`~repro.harness.spec.ExperimentSpec`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..config import CacheConfig, PlatformConfig
from ..core.database import Database
from ..obs.bus import HeartbeatEmitter, TelemetryPublisher
from ..obs.profiler import PhaseProfiler
from ..obs.session import ObservabilitySession
from ..workloads.tpcc import TPCCConfig, TPCCWorkload
from ..workloads.ycsb import YCSBConfig, YCSBWorkload
from .spec import DEFAULT_CACHE_BYTES, ExperimentSpec

__all__ = ["DEFAULT_CACHE_BYTES", "ExperimentResult", "ExperimentSpec",
           "run"]


def _make_database(spec: ExperimentSpec) -> Database:
    platform_config = PlatformConfig(
        latency=spec.latency,
        cache=CacheConfig(capacity_bytes=spec.cache_bytes),
        seed=spec.seed)
    if spec.sharded:
        from ..dist.coordinator import ShardedDatabase
        return ShardedDatabase(
            engine=spec.engine, partitions=spec.partitions,
            platform_config=platform_config,
            engine_config=spec.engine_config, seed=spec.seed)
    return Database(engine=spec.engine, partitions=spec.partitions,
                    platform_config=platform_config,
                    engine_config=spec.engine_config, seed=spec.seed)


@dataclass
class ExperimentResult:
    """Everything one experiment point measures."""

    engine: str
    workload: str
    latency: str
    txns: int
    sim_seconds: float
    nvm_loads: int
    nvm_stores: int
    time_breakdown: Dict[str, float] = field(default_factory=dict)
    storage_breakdown: Dict[str, int] = field(default_factory=dict)
    #: Free-form per-run scalars. Always carries the spec identity
    #: (``seed``, ``partitions``, ``cache_bytes``) so merged sweep
    #: outputs are reproducible from the JSON alone.
    extra: Dict[str, float] = field(default_factory=dict)
    #: Per-transaction simulated-latency percentiles (p50/p95/p99/max,
    #: ns); populated only when an observability session is attached.
    latency_percentiles: Optional[Dict[str, float]] = None
    #: Periodic counter samples over the run (see repro.obs.sampler);
    #: populated only when an observability session is attached.
    timeseries: Optional[List[Dict[str, float]]] = None
    #: Phase profile (``repro-phase-profile`` payload, see
    #: repro.obs.profiler): wall-vs-simulated time per run phase.
    #: Populated only when the run executes with live telemetry —
    #: profile data is wall-clock side-band, so default runs stay
    #: byte-identical between serial and parallel sweeps.
    phases: Optional[Dict[str, Any]] = None

    @property
    def throughput(self) -> float:
        """Committed transactions per simulated second."""
        if self.sim_seconds == 0:
            return 0.0
        return self.txns / self.sim_seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (sweep summary files)."""
        payload = dataclasses.asdict(self)
        payload["throughput"] = self.throughput
        return payload


def _measure(db: Database, run_workload, spec: ExperimentSpec,
             obs: Optional[ObservabilitySession] = None
             ) -> ExperimentResult:
    """Snapshot counters, execute the workload, report the deltas
    (profiling starts after the initial load, as in Section 5)."""
    start_ns = db.now_ns
    loads_before = db.nvm_counters()["loads"]
    stores_before = db.nvm_counters()["stores"]
    categories_before = db.category_ns()
    if obs is not None:
        obs.begin_run(db)
    run_workload()
    # Steady-state accounting: dirty cache lines the run produced are
    # NVM writes it owes — drain them into the measurement window (at
    # the paper's 8M-txn scale eviction does this naturally).
    db.settle()
    obs_stats = obs.end_run(db) if obs is not None else None
    counters = db.nvm_counters()
    categories_after = db.category_ns()
    deltas = {name: categories_after[name] - categories_before[name]
              for name in categories_after}
    total_delta = sum(deltas.values()) or 1.0
    return ExperimentResult(
        engine=spec.engine,
        workload=spec.workload_name,
        latency=spec.latency.name,
        txns=spec.num_txns,
        sim_seconds=(db.now_ns - start_ns) / 1e9,
        nvm_loads=counters["loads"] - loads_before,
        nvm_stores=counters["stores"] - stores_before,
        time_breakdown={name: value / total_delta
                        for name, value in deltas.items()},
        storage_breakdown=db.storage_breakdown(),
        latency_percentiles=(obs_stats["latency_percentiles"]
                             if obs_stats else None),
        timeseries=obs_stats["timeseries"] if obs_stats else None,
    )


def _finish_run(db: Database, result: ExperimentResult,
                obs: Optional[ObservabilitySession],
                crash_recover: bool,
                profiler: PhaseProfiler) -> None:
    """Post-measurement epilogue: optional crash + recovery cycle (so
    recovery-phase spans land in the trace) and session detach."""
    if crash_recover:
        with profiler.phase("recovery", db):
            db.crash()
            recovery_s = db.recover()
        result.extra["recovery_seconds"] = recovery_s
        result.extra["recovery_s"] = recovery_s
        if obs is not None:
            obs.registry.gauge(
                "recovery_sim_seconds",
                help="Simulated seconds the crash-recovery epilogue took",
                engine=result.engine,
                workload=result.workload).set(recovery_s)
    if obs is not None:
        with profiler.phase("teardown", db):
            obs.detach(db)


def _make_workload(spec: ExperimentSpec):
    if spec.workload == "ycsb":
        config = YCSBConfig(num_tuples=spec.num_tuples,
                            mixture=spec.mixture, skew=spec.skew,
                            seed=spec.seed)
        return YCSBWorkload(config, partitions=spec.partitions)
    config = spec.tpcc_config or TPCCConfig(seed=spec.seed)
    return TPCCWorkload(config, partitions=spec.partitions)


def run(spec: ExperimentSpec,
        obs: Optional[ObservabilitySession] = None,
        database: Optional[Database] = None,
        telemetry: Optional[TelemetryPublisher] = None
        ) -> ExperimentResult:
    """Execute one experiment point; returns its measurements.

    ``spec`` fully determines the run, so equal specs produce equal
    results in any process — this is what lets the scheduler fan points
    out across workers and still merge deterministically.

    Pass ``obs`` to trace/meter the run. Pass ``database`` to reuse a
    pre-loaded database (e.g. several mixtures against one load, as in
    the read/write experiments); that escape hatch is in-process only —
    live databases never cross the scheduler's process boundary.

    Pass ``telemetry`` (a :class:`~repro.obs.bus.TelemetryPublisher`)
    to stream progress while the point runs: per-commit heartbeats
    (rate-limited) plus phase transitions, and to attach the phase
    profile to :attr:`ExperimentResult.phases`. Telemetry is wall-clock
    side-band data; the measured results are identical with it on or
    off.
    """
    profiler = PhaseProfiler(publisher=telemetry,
                             enabled=telemetry is not None)
    profiler.start()
    workload = _make_workload(spec)
    db = database
    fresh = db is None
    if fresh:
        with profiler.phase("setup"):
            db = _make_database(spec)
    if obs is not None:
        obs.attach(db, spec.engine, spec.workload_name)
    heartbeat = None
    # Per-commit heartbeats hook partition objects directly, which the
    # sharded facade does not expose — its progress streams through the
    # phase events instead.
    if telemetry is not None and not getattr(db, "is_sharded", False):
        heartbeat = HeartbeatEmitter(telemetry, db)
        heartbeat.install()
    try:
        if fresh:
            with profiler.phase("load", db):
                workload.load(db)
            # Post-load checkpoint (engines without checkpoints: no-op)
            # so the in-run checkpoint cadence is measured from a clean
            # base.
            with profiler.phase("checkpoint", db):
                db.checkpoint()
        if spec.run_checkpoint_interval is not None:
            db.set_checkpoint_interval(spec.run_checkpoint_interval)
        db.settle()
        with profiler.phase("run", db):
            result = _measure(
                db, lambda: workload.run(db, spec.num_txns), spec,
                obs=obs)
        if spec.workload == "ycsb":
            result.extra["num_tuples"] = spec.num_tuples
        else:
            # The visible cost of the paper's single-partition cheat
            # (and its sharded 2PC counterpart) — comparable across
            # serial and sharded runs of the same spec.
            result.extra["remote_redirected"] = \
                workload.remote_redirected
            result.extra["remote_distributed"] = \
                workload.remote_distributed
        result.extra["seed"] = spec.seed
        result.extra["partitions"] = spec.partitions
        result.extra["cache_bytes"] = spec.cache_bytes
        _finish_run(db, result, obs, spec.crash_recover, profiler)
    finally:
        if heartbeat is not None:
            heartbeat.uninstall()
        # A fresh sharded database owns executor processes; reap them.
        if fresh and db is not None and getattr(db, "is_sharded", False):
            db.close()
    profiler.stop()
    if profiler.enabled:
        result.phases = profiler.to_dict()
    return result
