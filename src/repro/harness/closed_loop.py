"""Closed-loop multi-client workload driver for the network tier.

Where :func:`repro.harness.runner.run` drives one in-process database
as fast as the simulator allows, this driver measures the *server*:
N clients, each on its own connection and session, each running a
think-time-free loop of ``begin -> ops -> commit`` (a *closed loop* —
a client issues its next transaction only after its previous commit
became durable). Concurrency here is what makes group commit visible:
with N clients in flight the server coalesces their durable points,
and the per-transaction durability cost drops roughly N-fold.

The driver is deliberately resilient: a transaction that dies to a
simulated power failure (``CrashedError``) or a dropped connection
(``ServerDisconnected``) is counted as failed, the client re-opens its
session, and the loop carries on — which is exactly what lets the CI
smoke job crash and recover the server mid-run under live load.

Client count is a sweep dimension: :func:`sweep_clients` runs the same
workload at increasing client counts against fresh servers, showing
durability rounds per transaction fall as batches fill
(``docs/performance.md``).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.schema import Column, ColumnType, Schema
from ..errors import (CrashedError, ProtocolError, ReproError,
                      RetryAfterError, ServerDisconnected,
                      SessionError)

__all__ = ["ClosedLoopConfig", "ClosedLoopResult", "run_closed_loop",
           "run_loopback", "sweep_clients"]


@dataclass(frozen=True)
class ClosedLoopConfig:
    """Shape of one closed-loop run."""

    clients: int = 8
    txns_per_client: int = 50
    ops_per_txn: int = 2        # update+get pairs per transaction
    keys: int = 512
    seed: int = 131
    table: str = "cl_kv"
    #: Give up on a transaction after this many begin retries while the
    #: server is crashed (waiting for somebody to call recover).
    max_txn_retries: int = 2000
    retry_sleep_s: float = 0.005


@dataclass
class ClosedLoopResult:
    """What one closed-loop run measured."""

    clients: int
    committed: int
    failed: int
    wall_seconds: float
    #: Transactions per wall-clock second (closed-loop throughput).
    throughput: float
    #: Simulated durability rounds (WAL fsyncs + flush+fence trains)
    #: spent by the measurement window's group-commit flushes.
    durability_rounds: int
    rounds_per_txn: float
    mean_batch: float
    max_batch: int
    flush_reasons: Dict[str, int] = field(default_factory=dict)
    server_stats: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clients": self.clients,
            "committed": self.committed,
            "failed": self.failed,
            "wall_seconds": self.wall_seconds,
            "throughput": self.throughput,
            "durability_rounds": self.durability_rounds,
            "rounds_per_txn": self.rounds_per_txn,
            "mean_batch": self.mean_batch,
            "max_batch": self.max_batch,
            "flush_reasons": dict(self.flush_reasons),
        }


def table_schema(config: ClosedLoopConfig) -> Schema:
    return Schema.build(
        config.table,
        [Column("k", ColumnType.INT), Column("v", ColumnType.INT)],
        primary_key=["k"])


def load_table(client, config: ClosedLoopConfig) -> None:
    """Create and populate the driver's table through one session."""
    client.create_table(table_schema(config))
    with client.session("loader") as session:
        for base in range(0, config.keys, 256):
            session.begin()
            for key in range(base, min(base + 256, config.keys)):
                session.insert(config.table, {"k": key, "v": 0})
            session.commit()


class _Worker(threading.Thread):
    """One closed-loop client."""

    def __init__(self, index: int, host: str, port: int,
                 config: ClosedLoopConfig,
                 start_barrier: threading.Barrier) -> None:
        super().__init__(name=f"closed-loop-{index}", daemon=True)
        self.index = index
        self.host = host
        self.port = port
        self.config = config
        self.start_barrier = start_barrier
        self.committed = 0
        self.failed = 0
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            self._loop()
        except BaseException as exc:
            self.error = exc

    def _loop(self) -> None:
        from ..client import ReproClient

        config = self.config
        rng = random.Random(config.seed * 7919 + self.index)
        client = ReproClient(self.host, self.port)
        client.connect()
        session = client.session(f"client-{self.index}")
        # A bounded wait so one worker failing to connect cannot hang
        # the whole fleet on the barrier.
        self.start_barrier.wait(timeout=60.0)
        try:
            for _ in range(config.txns_per_client):
                session = self._one_txn(client, session, rng)
        finally:
            try:
                session.close()
            except ReproError:
                pass
            client.close()

    def _one_txn(self, client, session, rng):
        """Run one transaction to durable commit, re-opening the
        session (or connection) as needed; returns the live session."""
        config = self.config
        for attempt in range(config.max_txn_retries):
            try:
                session.begin()
                for _ in range(config.ops_per_txn):
                    key = rng.randrange(config.keys)
                    row = session.get(config.table, key)
                    session.update(config.table, key,
                                   {"v": row["v"] + 1})
                session.commit()
                self.committed += 1
                return session
            except RetryAfterError as exc:
                # Load shed before any work: honor the server's hint
                # (the transaction never started, so nothing failed).
                time.sleep(exc.retry_after_s)
            except CrashedError:
                # Power failure: the transaction (possibly logically
                # committed, not yet durable) is gone. Wait out the
                # recovery, then retry with the same session.
                self.failed += 1
                time.sleep(config.retry_sleep_s)
            except SessionError:
                # Session state got out of step with a failure above,
                # or the lease reaper expired the session; start over
                # with a fresh one. The server may still be crashed —
                # then wait it out and retry, same as above.
                try:
                    session = client.session(
                        f"client-{self.index}r{attempt}")
                except CrashedError:
                    self.failed += 1
                    time.sleep(config.retry_sleep_s)
            except (ServerDisconnected, ProtocolError):
                # A dropped connection — or a session handle gone
                # stale across a mid-call reconnect ("no open
                # session"): reconnect and start a fresh session.
                self.failed += 1
                client.connect()
                session = client.session(
                    f"client-{self.index}r{attempt}")
        raise RuntimeError(
            f"client {self.index} could not commit after "
            f"{config.max_txn_retries} attempts")


def _gc_totals(stats: Dict[str, Any]) -> Tuple[int, int, int, int,
                                               Dict[str, int]]:
    txns = batches = rounds = max_batch = 0
    reasons: Dict[str, int] = {}
    for stage in stats.get("group_commit", []):
        txns += stage["txns"]
        batches += stage["batches"]
        rounds += stage["durability_rounds"]
        max_batch = max(max_batch, stage["max_batch"])
        for reason, count in stage["flush_reasons"].items():
            reasons[reason] = reasons.get(reason, 0) + count
    return txns, batches, rounds, max_batch, reasons


def run_closed_loop(host: str, port: int,
                    config: Optional[ClosedLoopConfig] = None,
                    *, load: bool = True) -> ClosedLoopResult:
    """Drive a running server with N concurrent closed-loop clients."""
    from ..client import ReproClient

    config = config or ClosedLoopConfig()
    admin = ReproClient(host, port)
    admin.connect()
    try:
        if load:
            load_table(admin, config)
        before = _gc_totals(admin.stats())
        barrier = threading.Barrier(config.clients)
        workers = [_Worker(i, host, port, config, barrier)
                   for i in range(config.clients)]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        wall = time.perf_counter() - started
        for worker in workers:
            if worker.error is not None:
                raise worker.error
        stats = admin.stats()
    finally:
        admin.close()

    after = _gc_totals(stats)
    txns = after[0] - before[0]
    batches = after[1] - before[1]
    rounds = after[2] - before[2]
    committed = sum(worker.committed for worker in workers)
    failed = sum(worker.failed for worker in workers)
    return ClosedLoopResult(
        clients=config.clients,
        committed=committed,
        failed=failed,
        wall_seconds=wall,
        throughput=committed / wall if wall > 0 else 0.0,
        durability_rounds=rounds,
        rounds_per_txn=rounds / txns if txns else 0.0,
        mean_batch=txns / batches if batches else 0.0,
        max_batch=after[3],
        flush_reasons={reason: after[4].get(reason, 0)
                       - before[4].get(reason, 0)
                       for reason in after[4]},
        server_stats=stats,
    )


def run_loopback(server_config=None,
                 config: Optional[ClosedLoopConfig] = None,
                 *, procedures=None) -> ClosedLoopResult:
    """Start a loopback server on a background thread, run one
    closed-loop measurement against it, and shut it down."""
    from ..server import ServerConfig, ServerThread

    server_config = server_config or ServerConfig()
    with ServerThread(server_config, procedures=procedures) as thread:
        host, port = thread.server.address
        return run_closed_loop(host, port, config)


def sweep_clients(client_counts: List[int], server_config=None,
                  config: Optional[ClosedLoopConfig] = None
                  ) -> List[ClosedLoopResult]:
    """The client-count sweep dimension: one fresh loopback server per
    point, same workload shape, increasing concurrency."""
    import dataclasses

    base = config or ClosedLoopConfig()
    return [run_loopback(server_config,
                         dataclasses.replace(base, clients=clients))
            for clients in client_counts]
