"""Experiment harness: specs, runners, scheduler, and figure drivers.

The modern API is spec-based::

    from repro.harness import ExperimentSpec, run, run_sweep

    spec = ExperimentSpec.ycsb("nvm-inp", "balanced", "low",
                               latency="high")
    result = run(spec)                       # one point, in-process

    outcomes = run_sweep([spec, ...], jobs=4)   # a grid, in parallel
"""

from .closed_loop import (ClosedLoopConfig, ClosedLoopResult,
                          run_closed_loop, run_loopback, sweep_clients)
from .experiments import FULL_SCALE, QUICK_SCALE, Scale
from .runner import (DEFAULT_CACHE_BYTES, ExperimentResult,
                     ExperimentSpec, run)
from .scheduler import (PointOutcome, merged_session, results_or_raise,
                        run_sweep, write_sweep_summary)

__all__ = ["ClosedLoopConfig", "ClosedLoopResult", "DEFAULT_CACHE_BYTES",
           "ExperimentResult", "ExperimentSpec",
           "FULL_SCALE", "PointOutcome", "QUICK_SCALE", "Scale",
           "merged_session", "results_or_raise", "run", "run_closed_loop",
           "run_loopback", "run_sweep", "sweep_clients",
           "write_sweep_summary"]
