"""Experiment harness: runners and per-figure experiment drivers."""

from .experiments import FULL_SCALE, QUICK_SCALE, Scale
from .runner import ExperimentResult, run_tpcc, run_ycsb

__all__ = ["ExperimentResult", "FULL_SCALE", "QUICK_SCALE", "Scale",
           "run_tpcc", "run_ycsb"]
