"""Experiment harness: specs, runners, scheduler, and figure drivers.

The modern API is spec-based::

    from repro.harness import ExperimentSpec, run, run_sweep

    spec = ExperimentSpec.ycsb("nvm-inp", "balanced", "low",
                               latency="high")
    result = run(spec)                       # one point, in-process

    outcomes = run_sweep([spec, ...], jobs=4)   # a grid, in parallel

``run_ycsb``/``run_tpcc`` are deprecated shims over ``run``.
"""

from .experiments import FULL_SCALE, QUICK_SCALE, Scale
from .runner import (DEFAULT_CACHE_BYTES, ExperimentResult,
                     ExperimentSpec, run, run_tpcc, run_ycsb)
from .scheduler import (PointOutcome, merged_session, results_or_raise,
                        run_sweep, write_sweep_summary)

__all__ = ["DEFAULT_CACHE_BYTES", "ExperimentResult", "ExperimentSpec",
           "FULL_SCALE", "PointOutcome", "QUICK_SCALE", "Scale",
           "merged_session", "results_or_raise", "run", "run_sweep",
           "run_tpcc", "run_ycsb", "write_sweep_summary"]
