"""`ExperimentSpec`: one experiment point as a picklable value object.

The paper's evaluation (Section 5) is a grid — engines x workload
configurations x NVM latencies — and every point of that grid is an
independent deterministic simulation. A spec captures *everything* that
defines one point, so it can

* cross a process boundary (the scheduler pickles specs into worker
  processes — see :mod:`repro.harness.scheduler`),
* name result artifacts on disk (:meth:`ExperimentSpec.slug`), and
* key the deterministic merge of a parallel sweep (results are ordered
  by spec, never by completion).

`repro.harness.runner.run(spec)` executes a spec — it is the single
entry point for running experiment points.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from ..config import EngineConfig, LatencyProfile
from ..errors import ConfigError
from ..workloads.tpcc import TPCCConfig
from ..workloads.ycsb import MIXTURES, SKEWS

#: Default CPU-cache size for experiments. The emulator's 20 MB L3
#: covers ~1% of the paper's 2 GB YCSB database; a small cache keeps a
#: comparable miss structure for the scaled-down datasets.
DEFAULT_CACHE_BYTES = 256 * 1024

#: Workload-default RNG seeds (the seeds the legacy entry points used).
DEFAULT_SEEDS = {"ycsb": 31, "tpcc": 47}

#: Workload-default transaction counts.
DEFAULT_TXNS = {"ycsb": 2000, "tpcc": 400}

_SLUG_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


@dataclass(frozen=True)
class ExperimentSpec:
    """Complete, immutable description of one experiment point."""

    engine: str
    workload: str                                   # "ycsb" | "tpcc"
    #: YCSB shape (ignored for TPC-C).
    mixture: str = "balanced"
    skew: str = "low"
    num_tuples: int = 2000
    #: Transactions in the measurement window; ``None`` means the
    #: workload default (2000 YCSB / 400 TPC-C).
    num_txns: Optional[int] = None
    #: TPC-C sizing (ignored for YCSB); ``None`` means TPCCConfig
    #: defaults with this spec's seed.
    tpcc_config: Optional[TPCCConfig] = None
    #: Accepts a profile or a name ("dram" | "low[-nvm]" | "high[-nvm]").
    latency: LatencyProfile = field(
        default_factory=LatencyProfile.dram)
    partitions: int = 1
    engine_config: Optional[EngineConfig] = None
    #: ``None`` means the workload default (31 YCSB / 47 TPC-C).
    seed: Optional[int] = None
    cache_bytes: int = DEFAULT_CACHE_BYTES
    #: Checkpoint cadence applied for the measured window only.
    run_checkpoint_interval: Optional[int] = None
    #: Attach a fresh ObservabilitySession to this point when it runs
    #: under the scheduler (per-point trace/metrics artifacts).
    observe: bool = False
    #: Append a crash + recovery cycle after the measurement window.
    crash_recover: bool = False
    #: Execute on the sharded tier: one executor process per partition
    #: (:class:`~repro.dist.coordinator.ShardedDatabase`) instead of
    #: the in-process database. Simulated results are identical on
    #: single-partition-only workloads; wall-clock time scales with
    #: real cores (see docs/scaleout.md).
    sharded: bool = False

    def __post_init__(self) -> None:
        if self.workload not in ("ycsb", "tpcc"):
            raise ConfigError(
                f"unknown workload {self.workload!r}; "
                f"expected 'ycsb' or 'tpcc'")
        if self.workload == "ycsb":
            if self.mixture not in MIXTURES:
                raise ConfigError(
                    f"unknown YCSB mixture {self.mixture!r}; "
                    f"expected one of {sorted(MIXTURES)}")
            if self.skew not in SKEWS:
                raise ConfigError(
                    f"unknown YCSB skew {self.skew!r}; "
                    f"expected one of {sorted(SKEWS)}")
        if self.partitions < 1:
            raise ConfigError("need at least one partition")
        if isinstance(self.latency, str):
            object.__setattr__(self, "latency",
                               LatencyProfile.parse(self.latency))
        if self.seed is None:
            object.__setattr__(self, "seed",
                               DEFAULT_SEEDS[self.workload])
        if self.num_txns is None:
            object.__setattr__(self, "num_txns",
                               DEFAULT_TXNS[self.workload])
        if self.num_txns < 1 or self.num_tuples < 1:
            raise ConfigError("num_txns and num_tuples must be >= 1")

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def ycsb(cls, engine: str, mixture: str = "balanced",
             skew: str = "low", **options: Any) -> "ExperimentSpec":
        """Spec for one YCSB point."""
        return cls(engine=engine, workload="ycsb", mixture=mixture,
                   skew=skew, **options)

    @classmethod
    def tpcc(cls, engine: str, **options: Any) -> "ExperimentSpec":
        """Spec for one TPC-C point."""
        return cls(engine=engine, workload="tpcc", **options)

    def with_options(self, **changes: Any) -> "ExperimentSpec":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def workload_name(self) -> str:
        """The workload label results report (matches the legacy API):
        ``ycsb/<mixture>/<skew>`` or ``tpcc``."""
        if self.workload == "ycsb":
            return f"ycsb/{self.mixture}/{self.skew}"
        return "tpcc"

    def slug(self) -> str:
        """Filesystem-safe name for this point's result artifacts.
        Distinct grid axes (workload, engine, latency, partitions,
        seed) map to distinct slugs; the scheduler prefixes an index so
        even identical specs get unique files."""
        parts = [self.workload_name.replace("/", "-"), self.engine,
                 self.latency.name, f"p{self.partitions}",
                 f"s{self.seed}"]
        if self.sharded:
            parts.append("sharded")
        return _SLUG_UNSAFE.sub("_", "_".join(parts))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready description (self-describing sweep outputs)."""
        spec: Dict[str, Any] = {
            "engine": self.engine,
            "workload": self.workload_name,
            "latency": self.latency.name,
            "num_txns": self.num_txns,
            "partitions": self.partitions,
            "seed": self.seed,
            "cache_bytes": self.cache_bytes,
        }
        if self.workload == "ycsb":
            spec["num_tuples"] = self.num_tuples
        if self.run_checkpoint_interval is not None:
            spec["run_checkpoint_interval"] = self.run_checkpoint_interval
        if self.sharded:
            spec["sharded"] = True
        return spec
