"""Tagged-pipe message protocol shared by every multiprocess tier.

Two subsystems move work over ``multiprocessing`` pipes: the sweep
scheduler (one worker process per experiment point,
``harness/scheduler.py``) and the sharded execution tier (one
long-lived executor process per partition, ``repro.dist``). Both speak
the same framing: every message is a ``(tag, payload)`` tuple, so a
single pipe can interleave streamed side-band traffic (telemetry
events) ahead of the messages that carry the protocol's actual state
machine forward.

Tags
----

``TAG_EVENT``
    A streamed :class:`~repro.obs.bus.TelemetryEvent` dict. Zero or
    more of these may arrive before any other message; receivers
    re-publish them and keep waiting.
``TAG_DONE``
    A scheduler worker's final message: ``(result, session, error)``.
    Exactly one per worker, always last.
``TAG_CMDS``
    A batch of executor commands ``[(op, args), ...]`` sent
    coordinator -> executor. Batching amortizes the pickle + syscall
    cost of the pipe over many fire-and-forget commands, which is what
    lets a sharded run keep every executor core busy.
``TAG_REPLY``
    An executor's response to a synchronous command:
    ``(ok, payload)`` where ``payload`` is the value on success or a
    formatted error string on failure.

The helpers are deliberately thin — the value of this module is that
both tiers agree on the framing (and that tests can speak it), not
that it hides the pipe.
"""

from __future__ import annotations

from typing import Any, Tuple

__all__ = ["TAG_EVENT", "TAG_DONE", "TAG_CMDS", "TAG_REPLY",
           "send", "try_send", "recv", "send_event", "send_done"]

TAG_EVENT = "event"
TAG_DONE = "done"
TAG_CMDS = "cmds"
TAG_REPLY = "reply"


def send(conn, tag: str, payload: Any) -> None:
    """Send one tagged message over ``conn``."""
    conn.send((tag, payload))


def try_send(conn, tag: str, payload: Any) -> bool:
    """Send, swallowing a dead pipe (the peer gave up on us); returns
    whether the message went out. Used by side-band publishers that
    must never raise into the workload they instrument."""
    try:
        conn.send((tag, payload))
    except (OSError, ValueError, BrokenPipeError):
        return False
    return True


def recv(conn) -> Tuple[str, Any]:
    """Receive one tagged message; raises EOFError/OSError on a dead
    pipe exactly like ``Connection.recv``."""
    return conn.recv()


def send_event(conn, payload: Any) -> bool:
    """Stream one telemetry event dict (side-band, never raises)."""
    return try_send(conn, TAG_EVENT, payload)


def send_done(conn, payload: Any) -> None:
    """Ship a worker's final ``(result, session, error)`` message."""
    send(conn, TAG_DONE, payload)
