"""Per-figure experiment drivers (one per table/figure in Section 5).

Each driver returns ``(headers, rows)`` ready for
:func:`repro.analysis.tables.format_table`, so the same code backs the
pytest benchmarks, the examples, and EXPERIMENTS.md. Workload sizes are
scaled down from the paper (see EXPERIMENTS.md); engine order and the
reported series match the paper's figures.

Sweep-shaped drivers take a ``jobs`` parameter: each builds its grid as
a list of :class:`~repro.harness.spec.ExperimentSpec` points and hands
it to :func:`~repro.harness.scheduler.run_sweep`, so ``jobs > 1`` fans
the grid out across worker processes while keeping the merged output
identical to the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import (CacheConfig, EngineConfig, LatencyProfile,
                      PlatformConfig)
from ..core.database import Database
from ..engines.base import ENGINE_NAMES
from ..nvm.constants import TECHNOLOGIES
from ..nvm.platform import Platform
from ..workloads.tpcc import TPCCConfig, TPCCWorkload
from ..workloads.ycsb import YCSBConfig, YCSBWorkload
from .runner import ExperimentResult, ExperimentSpec
from .scheduler import results_or_raise, run_sweep

ALL_ENGINES = list(ENGINE_NAMES.ALL)

#: Profile factories by canonical name (see LatencyProfile.parse, the
#: single string→profile point; this mapping survives for callers that
#: iterate over the paper's three configurations).
LATENCY_NAMES = ("dram", "low-nvm", "high-nvm")
LATENCIES = {name: (lambda name=name: LatencyProfile.parse(name))
             for name in LATENCY_NAMES}


@dataclass(frozen=True)
class Scale:
    """Scaled experiment sizes (the paper's values in comments)."""

    ycsb_tuples: int = 2000          # paper: 2,000,000
    ycsb_txns: int = 2000            # paper: 8,000,000
    tpcc_txns: int = 300             # paper: 8,000,000
    tpcc: TPCCConfig = field(default_factory=lambda: TPCCConfig(
        warehouses=2,                # paper: 8
        districts_per_warehouse=2,
        customers_per_district=40,
        items=300,                   # paper: 100,000
        initial_orders_per_district=12))
    recovery_txn_counts: Tuple[int, ...] = (250, 1000, 4000)
    #: Tuples loaded before the recovery runs — kept small so that
    #: replay work (proportional to transactions) dominates the
    #: constant checkpoint-reload term.
    recovery_tuples: int = 250
    cache_bytes: int = 256 * 1024    # emulator: 20 MB L3 vs 2 GB data
    #: The scaled TPC-C database is much smaller than YCSB's, so its
    #: cache is scaled further to keep the paper's ~2% coverage.
    tpcc_cache_bytes: int = 48 * 1024

    def engine_config(self, **overrides) -> EngineConfig:
        """Engine tunables matched to the scaled dataset: the NVM-CoW
        directory node is shrunk so the directory keeps the paper's
        leaf count (geometry note in EXPERIMENTS.md)."""
        settings = dict(
            nvm_cow_node_size=512,
            page_cache_bytes=256 * 1024,
            memtable_threshold_bytes=64 * 1024,
            checkpoint_interval_txns=100_000,
            group_commit_size=8,
        )
        settings.update(overrides)
        return EngineConfig(**settings)


QUICK_SCALE = Scale()
FULL_SCALE = Scale(ycsb_tuples=4000, ycsb_txns=4000, tpcc_txns=600,
                   recovery_txn_counts=(500, 2000, 8000))


# ----------------------------------------------------------------------
# Fig. 1 — allocator vs filesystem durable write bandwidth
# ----------------------------------------------------------------------

def fig1_interfaces(chunk_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32,
                                                  64, 128, 256),
                    total_bytes: int = 64 * 1024,
                    seed: int = 7) -> Tuple[List[str], List[List]]:
    """Durable write bandwidth (MB/s) through the two interfaces, for
    sequential and random access patterns (Fig. 1)."""
    from ..sim.rng import derive_rng
    headers = ["chunk (B)", "alloc seq", "fs seq", "alloc rand",
               "fs rand", "ratio seq"]
    rows = []
    for chunk in chunk_sizes:
        measures = {}
        for interface in ("allocator", "filesystem"):
            for pattern in ("seq", "rand"):
                platform = Platform(PlatformConfig(seed=seed))
                rng = derive_rng(seed, "fig1", interface, pattern,
                                 str(chunk))
                count = total_bytes // chunk
                payload = b"x" * chunk
                start = platform.clock.now_ns
                if interface == "allocator":
                    region = platform.allocator.malloc(total_bytes)
                    offsets = list(range(0, total_bytes - chunk + 1,
                                         chunk))[:count]
                    if pattern == "rand":
                        rng.shuffle(offsets)
                    for offset in offsets:
                        platform.memory.store(region.addr + offset,
                                              payload)
                        platform.memory.sync(region.addr + offset, chunk)
                else:
                    file = platform.filesystem.create("fig1")
                    offsets = list(range(0, total_bytes - chunk + 1,
                                         chunk))[:count]
                    if pattern == "rand":
                        rng.shuffle(offsets)
                    for offset in offsets:
                        platform.filesystem.write(file, offset, payload)
                        platform.filesystem.fsync(file)
                elapsed_s = (platform.clock.now_ns - start) / 1e9
                mb_written = count * chunk / (1024 * 1024)
                measures[(interface, pattern)] = mb_written / elapsed_s
        rows.append([
            chunk,
            measures[("allocator", "seq")],
            measures[("filesystem", "seq")],
            measures[("allocator", "rand")],
            measures[("filesystem", "rand")],
            measures[("allocator", "seq")] / measures[("filesystem",
                                                       "seq")],
        ])
    return headers, rows


# ----------------------------------------------------------------------
# Figs. 5-7 — YCSB throughput per latency configuration
# ----------------------------------------------------------------------

def ycsb_throughput(latency_name: str, scale: Scale = QUICK_SCALE,
                    mixtures: Optional[Sequence[str]] = None,
                    skews: Sequence[str] = ("low", "high"),
                    engines: Sequence[str] = tuple(ALL_ENGINES),
                    jobs: int = 1, bus=None,
                    ) -> Tuple[List[str], List[List],
                               Dict[tuple, ExperimentResult]]:
    """One of Figs. 5/6/7: throughput for every engine x mixture x skew
    under the given latency profile. Also returns the raw results
    keyed by (engine, mixture, skew) for the Figs. 9/10 reuse."""
    mixtures = list(mixtures or
                    ("read-only", "read-heavy", "balanced",
                     "write-heavy"))
    latency = LatencyProfile.parse(latency_name)
    headers = ["engine", *[f"{mixture}/{skew}"
                           for mixture in mixtures for skew in skews]]
    specs = [
        ExperimentSpec.ycsb(
            engine, mixture, skew, latency=latency,
            num_tuples=scale.ycsb_tuples, num_txns=scale.ycsb_txns,
            engine_config=scale.engine_config(),
            cache_bytes=scale.cache_bytes,
            run_checkpoint_interval=scale.ycsb_txns // 2)
        for engine in engines
        for mixture in mixtures
        for skew in skews
    ]
    points = results_or_raise(run_sweep(specs, jobs=jobs, bus=bus))
    results = {(spec.engine, spec.mixture, spec.skew): result
               for spec, result in zip(specs, points)}
    rows = [[engine, *[results[(engine, mixture, skew)].throughput
                       for mixture in mixtures for skew in skews]]
            for engine in engines]
    return headers, rows, results


# ----------------------------------------------------------------------
# Fig. 8 / Fig. 11 — TPC-C throughput and reads/writes
# ----------------------------------------------------------------------

def tpcc_throughput(scale: Scale = QUICK_SCALE,
                    latencies: Sequence[str] = ("dram", "low-nvm",
                                                "high-nvm"),
                    engines: Sequence[str] = tuple(ALL_ENGINES),
                    jobs: int = 1, bus=None,
                    ) -> Tuple[List[str], List[List],
                               Dict[tuple, ExperimentResult]]:
    """Fig. 8: TPC-C throughput for every engine under each latency."""
    headers = ["engine", *latencies]
    grid = [(engine, latency_name)
            for engine in engines for latency_name in latencies]
    specs = [
        ExperimentSpec.tpcc(
            engine, latency=LatencyProfile.parse(latency_name),
            tpcc_config=scale.tpcc, num_txns=scale.tpcc_txns,
            engine_config=scale.engine_config(),
            cache_bytes=scale.tpcc_cache_bytes,
            run_checkpoint_interval=scale.tpcc_txns // 2)
        for engine, latency_name in grid
    ]
    results = dict(zip(grid, results_or_raise(
        run_sweep(specs, jobs=jobs, bus=bus))))
    rows = [[engine, *[results[(engine, latency_name)].throughput
                       for latency_name in latencies]]
            for engine in engines]
    return headers, rows, results


# ----------------------------------------------------------------------
# Fig. 12 — recovery latency vs number of transactions
# ----------------------------------------------------------------------

def recovery_latency(workload: str = "ycsb",
                     scale: Scale = QUICK_SCALE,
                     engines: Sequence[str] = (
                         ENGINE_NAMES.INP, ENGINE_NAMES.LOG,
                         ENGINE_NAMES.NVM_INP, ENGINE_NAMES.NVM_LOG),
                     ) -> Tuple[List[str], List[List]]:
    """Fig. 12: time to restore a consistent state after a kill, as a
    function of the transactions executed since the last durable
    point. CoW engines are omitted, as in the paper (they never need
    to recover)."""
    txn_counts = scale.recovery_txn_counts
    headers = ["engine", *[f"{count} txns (ms)" for count in txn_counts]]
    # Recovery must replay everything: no checkpoints / MemTable
    # flushes during the run (matching the paper's setup, where the
    # recovered count is controlled by those frequencies).
    rows = []
    for engine in engines:
        row: List = [engine]
        for count in txn_counts:
            config = scale.engine_config(
                checkpoint_interval_txns=10 ** 9,
                memtable_threshold_bytes=2 ** 30)
            platform_config = PlatformConfig(
                cache=CacheConfig(capacity_bytes=scale.cache_bytes),
                seed=29)
            db = Database(engine=engine, platform_config=platform_config,
                          engine_config=config, seed=29)
            if workload == "ycsb":
                generator = YCSBWorkload(YCSBConfig(
                    num_tuples=scale.recovery_tuples,
                    mixture="write-heavy", skew="low", seed=29))
                generator.load(db)
                # Durable point after loading (checkpoint / MemTable
                # flush): recovery then replays exactly the `count`
                # transactions executed since, as in the paper, where
                # "the number of transactions that need to be recovered
                # depends on the frequency of checkpointing ... and on
                # the frequency of flushing the MemTable".
                db.checkpoint()
                generator.run(db, count)
            else:
                tpcc = TPCCWorkload(scale.tpcc)
                tpcc.load(db)
                db.checkpoint()
                tpcc.run(db, min(count, scale.tpcc_txns * 4))
            db.crash()
            row.append(db.recover() * 1e3)
        rows.append(row)
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 13 — execution time breakdown
# ----------------------------------------------------------------------

def time_breakdown(scale: Scale = QUICK_SCALE,
                   mixtures: Sequence[str] = ("read-only", "read-heavy",
                                              "balanced", "write-heavy"),
                   engines: Sequence[str] = tuple(ALL_ENGINES),
                   jobs: int = 1, bus=None,
                   ) -> Dict[str, Tuple[List[str], List[List]]]:
    """Fig. 13: % of execution time per engine component (storage /
    recovery / index / other), YCSB low skew, low NVM latency."""
    grid = [(mixture, engine)
            for mixture in mixtures for engine in engines]
    specs = [
        ExperimentSpec.ycsb(
            engine, mixture, "low", latency=LatencyProfile.low_nvm(),
            num_tuples=scale.ycsb_tuples, num_txns=scale.ycsb_txns,
            engine_config=scale.engine_config(),
            cache_bytes=scale.cache_bytes,
            run_checkpoint_interval=scale.ycsb_txns // 2)
        for mixture, engine in grid
    ]
    results = dict(zip(grid, results_or_raise(
        run_sweep(specs, jobs=jobs, bus=bus))))
    figures = {}
    for mixture in mixtures:
        headers = ["engine", "storage %", "recovery %", "index %",
                   "other %"]
        rows = []
        for engine in engines:
            breakdown = results[(mixture, engine)].time_breakdown
            rows.append([engine,
                         100 * breakdown.get("storage", 0.0),
                         100 * breakdown.get("recovery", 0.0),
                         100 * breakdown.get("index", 0.0),
                         100 * breakdown.get("other", 0.0)])
        figures[mixture] = (headers, rows)
    return figures


# ----------------------------------------------------------------------
# Fig. 14 — storage footprint
# ----------------------------------------------------------------------

def storage_footprint(workload: str = "ycsb",
                      scale: Scale = QUICK_SCALE,
                      engines: Sequence[str] = tuple(ALL_ENGINES),
                      jobs: int = 1, bus=None,
                      ) -> Tuple[List[str], List[List]]:
    """Fig. 14: NVM bytes per component after running the workload."""
    headers = ["engine", "table (KB)", "index (KB)", "log (KB)",
               "checkpoint (KB)", "other (KB)", "total (KB)"]
    if workload == "ycsb":
        specs = [
            ExperimentSpec.ycsb(
                engine, "balanced", "low",
                num_tuples=scale.ycsb_tuples,
                num_txns=scale.ycsb_txns,
                engine_config=scale.engine_config(),
                cache_bytes=scale.cache_bytes,
                run_checkpoint_interval=scale.ycsb_txns // 2)
            for engine in engines
        ]
    else:
        specs = [
            ExperimentSpec.tpcc(
                engine, tpcc_config=scale.tpcc,
                num_txns=scale.tpcc_txns,
                engine_config=scale.engine_config(),
                cache_bytes=scale.tpcc_cache_bytes,
                run_checkpoint_interval=scale.tpcc_txns // 2)
            for engine in engines
        ]
    rows = []
    for spec, result in zip(specs, results_or_raise(
            run_sweep(specs, jobs=jobs, bus=bus))):
        breakdown = result.storage_breakdown
        row = [spec.engine]
        for component in ("table", "index", "log", "checkpoint",
                          "other"):
            row.append(breakdown.get(component, 0) / 1024)
        row.append(sum(breakdown.values()) / 1024)
        rows.append(row)
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 15 — B+tree node size sensitivity
# ----------------------------------------------------------------------

def node_size_sensitivity(scale: Scale = QUICK_SCALE,
                          mixtures: Sequence[str] = ("read-heavy",
                                                     "write-heavy"),
                          jobs: int = 1, bus=None,
                          ) -> Dict[str, Tuple[List[str], List[List]]]:
    """Fig. 15: throughput of the NVM-aware engines while varying their
    B+tree node sizes (YCSB, low latency, low skew)."""
    sweeps = {
        ENGINE_NAMES.NVM_INP: ("btree_node_size",
                               (128, 256, 512, 1024, 2048)),
        ENGINE_NAMES.NVM_COW: ("nvm_cow_node_size",
                               (256, 512, 1024, 2048, 4096)),
        ENGINE_NAMES.NVM_LOG: ("btree_node_size",
                               (128, 256, 512, 1024, 2048)),
    }
    grid = [(engine, parameter, size, mixture)
            for engine, (parameter, sizes) in sweeps.items()
            for size in sizes
            for mixture in mixtures]
    specs = [
        ExperimentSpec.ycsb(
            engine, mixture, "low", latency=LatencyProfile.low_nvm(),
            num_tuples=scale.ycsb_tuples, num_txns=scale.ycsb_txns,
            engine_config=scale.engine_config(**{parameter: size}),
            cache_bytes=scale.cache_bytes)
        for engine, parameter, size, mixture in grid
    ]
    results = {(engine, size, mixture): result
               for (engine, __, size, mixture), result in zip(
                   grid,
                   results_or_raise(run_sweep(specs, jobs=jobs,
                                              bus=bus)))}
    figures = {}
    for engine, (parameter, sizes) in sweeps.items():
        headers = ["node size (B)", *mixtures]
        rows = [[size, *[results[(engine, size, mixture)].throughput
                         for mixture in mixtures]]
                for size in sizes]
        figures[engine] = (headers, rows)
    return figures


# ----------------------------------------------------------------------
# Fig. 16 — sync primitive latency sensitivity
# ----------------------------------------------------------------------

def sync_latency_sensitivity(scale: Scale = QUICK_SCALE,
                             latencies_ns: Sequence[float] = (
                                 0, 10, 100, 1000, 10000),
                             mixtures: Sequence[str] = ("read-heavy",
                                                        "balanced",
                                                        "write-heavy"),
                             ) -> Dict[str, Tuple[List[str], List[List]]]:
    """Fig. 16: NVM-aware engine throughput as the durable sync
    primitive's latency grows (PCOMMIT/CLWB what-if, Appendix C).
    Latency 0 is the baseline CLFLUSH+SFENCE primitive."""
    figures = {}
    for engine in ENGINE_NAMES.NVM_AWARE:
        headers = ["sync latency (ns)", *mixtures]
        rows = []
        for extra_ns in latencies_ns:
            row: List = ["current" if extra_ns == 0 else extra_ns]
            for mixture in mixtures:
                platform_config = PlatformConfig(
                    latency=LatencyProfile.low_nvm(),
                    cache=CacheConfig(
                        capacity_bytes=scale.cache_bytes,
                        sync_extra_latency_ns=float(extra_ns)),
                    seed=31)
                workload = YCSBWorkload(YCSBConfig(
                    num_tuples=scale.ycsb_tuples, mixture=mixture,
                    skew="low", seed=31))
                db = Database(engine=engine,
                              platform_config=platform_config,
                              engine_config=scale.engine_config(),
                              seed=31)
                workload.load(db)
                db.settle()
                start_ns = db.now_ns
                workload.run(db, scale.ycsb_txns)
                elapsed = (db.now_ns - start_ns) / 1e9
                row.append(scale.ycsb_txns / elapsed)
            rows.append(row)
        figures[engine] = (headers, rows)
    return figures


# ----------------------------------------------------------------------
# Table 1 — NVM technology characteristics
# ----------------------------------------------------------------------

def table1_technologies() -> Tuple[List[str], List[List]]:
    headers = ["property", *TECHNOLOGIES.keys()]
    technologies = list(TECHNOLOGIES.values())
    rows = [
        ["read latency (ns)",
         *[tech.read_latency_ns for tech in technologies]],
        ["write latency (ns)",
         *[tech.write_latency_ns for tech in technologies]],
        ["addressability",
         *[tech.addressability for tech in technologies]],
        ["volatile", *[str(tech.volatile) for tech in technologies]],
        ["energy/bit (pJ)",
         *[tech.energy_per_bit_pj for tech in technologies]],
        ["endurance (writes)",
         *[f"{tech.endurance_writes:.0e}" for tech in technologies]],
    ]
    return headers, rows


# ----------------------------------------------------------------------
# Scale-out — wall-clock throughput vs executor processes
# ----------------------------------------------------------------------

def sweep_workers(worker_counts: Sequence[int] = (1, 2, 4),
                  workload: str = "ycsb",
                  scale: Scale = QUICK_SCALE,
                  engine: str = ENGINE_NAMES.NVM_INP,
                  remote_order_fraction: float = 0.0,
                  num_txns: Optional[int] = None,
                  seed: Optional[int] = None,
                  ) -> Tuple[List[str], List[List],
                             Dict[int, Dict[str, float]]]:
    """The scale-out sweep dimension: the same workload executed
    serially (every partition in one process) and sharded (one
    executor process per partition — see :mod:`repro.dist`) at
    increasing partition counts.

    Unlike every other driver in this module this one measures
    **wall-clock** throughput: the simulated results of a serial and a
    sharded run are byte-identical by construction (that is the tier's
    correctness contract, enforced by ``tests/dist``), so the only
    thing sharding can change is how fast real cores chew through the
    simulation. The numbers therefore depend on the host and are *not*
    part of any determinism gate.

    For TPC-C, ``remote_order_fraction`` makes that fraction of
    new-order transactions source one item from a remote warehouse;
    sharded runs execute those as genuine two-phase commits, so the
    sweep exposes the 2PC round-trip cost directly. The warehouse
    count is raised to the partition count when needed so every
    executor owns at least one warehouse.
    """
    import dataclasses
    import time

    from ..dist.coordinator import ShardedDatabase

    if workload not in ("ycsb", "tpcc"):
        raise ValueError(f"unknown workload {workload!r}")
    headers = ["workers", "serial txn/s", "sharded txn/s", "speedup"]
    rows: List[List] = []
    results: Dict[int, Dict[str, float]] = {}
    for workers in worker_counts:
        if workload == "ycsb":
            config = YCSBConfig(
                num_tuples=scale.ycsb_tuples,
                seed=seed if seed is not None else 31)
            bench = YCSBWorkload(config, partitions=workers)
            txns = num_txns if num_txns is not None \
                else scale.ycsb_txns * 5
        else:
            config = dataclasses.replace(
                scale.tpcc,
                warehouses=max(scale.tpcc.warehouses, workers),
                remote_order_fraction=remote_order_fraction,
                seed=seed if seed is not None else 47)
            bench = TPCCWorkload(config, partitions=workers)
            txns = num_txns if num_txns is not None \
                else scale.tpcc_txns * 5
        # Pre-generate the transaction stream outside the timed
        # window: generation cost is client-side work (a real client
        # is a different machine) and both modes consume the identical
        # stream.
        stream = list(bench.transactions(txns))
        walls: Dict[str, float] = {}
        for mode in ("serial", "sharded"):
            if mode == "serial":
                db = Database(engine=engine, partitions=workers,
                              engine_config=scale.engine_config())
            else:
                db = ShardedDatabase(engine=engine, partitions=workers,
                                     engine_config=scale.engine_config())
            try:
                point = type(bench)(config, partitions=workers)
                point.load(db)
                db.settle()
                if mode == "sharded":
                    db.barrier()
                start = time.perf_counter()
                if workload == "ycsb":
                    for procedure, args, pid in stream:
                        db.execute(procedure, *args, partition=pid)
                else:
                    for txn in stream:
                        point.execute_one(db, txn)
                db.flush()
                if mode == "sharded":
                    # Dispatch is fire-and-forget on the sharded tier;
                    # the barrier waits for every executor to drain.
                    db.barrier()
                walls[mode] = time.perf_counter() - start
            finally:
                if mode == "sharded":
                    db.close()
        speedup = walls["serial"] / walls["sharded"] \
            if walls["sharded"] > 0 else 0.0
        rows.append([workers, txns / walls["serial"],
                     txns / walls["sharded"], speedup])
        results[workers] = {"serial_wall_s": walls["serial"],
                            "sharded_wall_s": walls["sharded"],
                            "txns": float(txns), "speedup": speedup}
    return headers, rows, results
