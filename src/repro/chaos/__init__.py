"""Chaos engineering for the network tier.

The network tier claims crash-safe, exactly-once commit semantics;
this package is the adversary that earns those claims. It has two
halves:

- :mod:`repro.chaos.proxy` — a frame-boundary-aware TCP fault proxy
  that sits between clients and the server and, from a seeded plan,
  drops, delays, truncates, corrupts, duplicates, or one-way
  blackholes wire frames.
- :mod:`repro.chaos.campaign` — the chaos campaign: N closed-loop
  clients drive idempotent read-modify-write transactions through the
  proxy while a nemesis crashes and recovers the database, and a
  client-side **oracle** tracks a sound ``[min, max]`` bound on every
  key's final value (acked commit → both bounds advance; ambiguous
  outcome → only ``max``). At the end the campaign reconciles
  ambiguous commits against the server's commit ledger, checks every
  key against its bounds, and checks the server leaked no partition
  locks, admission slots, or group-commit waiters.

``python -m repro chaos`` runs a campaign from the command line; the
CI ``chaos-smoke`` job runs a fixed-seed one on every push.
"""

from .campaign import ChaosConfig, ChaosReport, run_chaos_campaign
from .proxy import FaultConfig, FaultProxyThread, NetworkFaultProxy

__all__ = [
    "FaultConfig", "NetworkFaultProxy", "FaultProxyThread",
    "ChaosConfig", "ChaosReport", "run_chaos_campaign",
]
