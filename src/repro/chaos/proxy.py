"""A frame-boundary-aware TCP fault proxy.

The proxy listens on its own port and forwards byte streams to an
upstream server, but it understands just enough of the wire format —
the 4-byte big-endian length prefix of :mod:`repro.server.protocol` —
to inject faults at *frame* granularity, which is where the
interesting failure modes live: a dropped request (did the server see
my commit?), a dropped response (the server saw it — did the client?),
a connection cut mid-frame, a corrupted body, a duplicated frame, a
half-open partition.

Determinism: every connection gets one :class:`random.Random` per
direction, seeded from ``(seed, connection index, direction)``, so a
campaign with a fixed seed replays the same fault plan regardless of
scheduler interleavings across connections.

Fault actions, chosen independently per complete frame:

========== ==========================================================
``drop``       the frame silently vanishes
``delay``      the frame is forwarded after a uniform random sleep
``truncate``   a prefix of the frame is forwarded, then the
               connection is cut (both directions) — the classic
               mid-frame disconnect
``corrupt``    the body bytes are XOR-mangled (length prefix intact):
               the receiver sees a well-framed JSON parse error
``duplicate``  the frame is forwarded twice back to back
``blackhole``  this *direction* of this connection forwards nothing
               from now on (one-way partition); the connection stays
               open so the peer blocks until its own timeout
========== ==========================================================

A partial frame is never forwarded (except by ``truncate``): bytes
buffer until the frame completes, preserving frame alignment for the
peer's decoder.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
import struct
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigError

__all__ = ["FaultConfig", "NetworkFaultProxy", "FaultProxyThread"]

_HEADER = struct.Struct(">I")

#: Order in which fault probabilities are evaluated per frame.
_ACTIONS = ("drop", "delay", "truncate", "corrupt", "duplicate",
            "blackhole")


@dataclass(frozen=True)
class FaultConfig:
    """Per-frame fault probabilities (independent; first match wins,
    evaluated in :data:`_ACTIONS` order; no match = forward)."""

    seed: int = 0xC4A05
    drop_p: float = 0.0
    delay_p: float = 0.0
    #: Uniform sleep range for ``delay`` (seconds).
    delay_s: Tuple[float, float] = (0.0005, 0.005)
    truncate_p: float = 0.0
    corrupt_p: float = 0.0
    duplicate_p: float = 0.0
    blackhole_p: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_p", "delay_p", "truncate_p", "corrupt_p",
                     "duplicate_p", "blackhole_p"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")
        if self.delay_s[0] < 0 or self.delay_s[1] < self.delay_s[0]:
            raise ConfigError("delay_s must be a (lo, hi) range")

    def total_fault_p(self) -> float:
        return (self.drop_p + self.delay_p + self.truncate_p
                + self.corrupt_p + self.duplicate_p + self.blackhole_p)


class _Cut(Exception):
    """Internal: the fault plan cut this connection mid-frame."""


class NetworkFaultProxy:
    """Asyncio fault proxy in front of one upstream ``(host, port)``."""

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 config: Optional[FaultConfig] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.config = config or FaultConfig()
        self.host = host
        self.port = port
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_count = 0
        #: Frames per action (plus ``blackholed`` for frames swallowed
        #: by an already-open blackhole).
        self.counters: Dict[str, int] = {action: 0
                                         for action in _ACTIONS}
        self.counters["forward"] = 0
        self.counters["blackholed"] = 0

    # ------------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def stats(self) -> Dict[str, int]:
        return {"connections": self._conn_count, **self.counters}

    # ------------------------------------------------------------------

    async def _handle(self, client_reader: asyncio.StreamReader,
                      client_writer: asyncio.StreamWriter) -> None:
        index = self._conn_count
        self._conn_count += 1
        try:
            upstream_reader, upstream_writer = \
                await asyncio.open_connection(*self.upstream)
        except OSError:
            client_writer.close()
            with contextlib.suppress(Exception):
                await client_writer.wait_closed()
            return
        pumps = [
            asyncio.ensure_future(self._pump(
                client_reader, upstream_writer,
                self._direction_rng(index, "c2s"))),
            asyncio.ensure_future(self._pump(
                upstream_reader, client_writer,
                self._direction_rng(index, "s2c"))),
        ]
        # Either side finishing (EOF, error, or a truncate cut) tears
        # down the whole connection — half-open forwarding is only
        # simulated *inside* a pump via blackhole. A cancellation
        # (proxy shutdown) is just another teardown, not an error.
        try:
            await asyncio.wait(pumps,
                               return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            pass
        for pump in pumps:
            pump.cancel()
        await asyncio.gather(*pumps, return_exceptions=True)
        for writer in (client_writer, upstream_writer):
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _direction_rng(self, index: int, direction: str
                       ) -> random.Random:
        return random.Random(
            (self.config.seed * 1000003 + index) * 31
            + (0 if direction == "c2s" else 1))

    async def _pump(self, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter,
                    rng: random.Random) -> None:
        buffer = bytearray()
        blackholed = False
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                buffer.extend(data)
                while True:
                    frame = self._next_frame(buffer)
                    if frame is None:
                        break
                    if blackholed:
                        self.counters["blackholed"] += 1
                        continue
                    blackholed = await self._apply(frame, writer, rng)
                if not blackholed:
                    await writer.drain()
        except (_Cut, ConnectionError, asyncio.IncompleteReadError):
            return

    @staticmethod
    def _next_frame(buffer: bytearray) -> Optional[bytes]:
        """Pop one complete frame (header + body) off the buffer. A
        length the proxy cannot trust (it only forwards between our
        own client and server) still parses — the proxy is not a
        validator, just frame-aligned."""
        if len(buffer) < _HEADER.size:
            return None
        (length,) = _HEADER.unpack_from(buffer)
        total = _HEADER.size + length
        if len(buffer) < total:
            return None
        frame = bytes(buffer[:total])
        del buffer[:total]
        return frame

    async def _apply(self, frame: bytes,
                     writer: asyncio.StreamWriter,
                     rng: random.Random) -> bool:
        """Run one frame through the fault plan. Returns True when the
        direction just blackholed."""
        action = self._choose(rng)
        self.counters[action] += 1
        if action == "drop":
            return False
        if action == "delay":
            await asyncio.sleep(rng.uniform(*self.config.delay_s))
            writer.write(frame)
            return False
        if action == "truncate":
            # Forward a strict prefix that still includes the header,
            # then cut the connection: the peer sees a mid-frame EOF.
            cut_at = rng.randrange(_HEADER.size, len(frame))
            writer.write(frame[:max(1, cut_at)])
            with contextlib.suppress(ConnectionError):
                await writer.drain()
            raise _Cut()
        if action == "corrupt":
            body = bytearray(frame)
            for _ in range(max(1, len(body) // 64)):
                position = rng.randrange(_HEADER.size, len(body))
                body[position] ^= 0xFF
            writer.write(bytes(body))
            return False
        if action == "duplicate":
            writer.write(frame + frame)
            return False
        if action == "blackhole":
            return True
        writer.write(frame)
        return False

    def _choose(self, rng: random.Random) -> str:
        roll = rng.random()
        config = self.config
        for action, probability in (
                ("drop", config.drop_p),
                ("delay", config.delay_p),
                ("truncate", config.truncate_p),
                ("corrupt", config.corrupt_p),
                ("duplicate", config.duplicate_p),
                ("blackhole", config.blackhole_p)):
            if roll < probability:
                return action
            roll -= probability
        return "forward"


class FaultProxyThread:
    """Run a :class:`NetworkFaultProxy` on a background thread — the
    sibling of :class:`repro.server.ServerThread` for tests and the
    chaos campaign."""

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 config: Optional[FaultConfig] = None) -> None:
        self.proxy = NetworkFaultProxy(upstream_host, upstream_port,
                                       config=config)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-chaos-proxy", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self.proxy.address

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
            else:
                raise

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        self._stop_event = stop_event
        try:
            await self.proxy.start()
        finally:
            self._ready.set()
        await stop_event.wait()
        await self.proxy.stop()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._thread is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "FaultProxyThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
