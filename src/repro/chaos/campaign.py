"""The chaos campaign: randomized faults, crashes, and an oracle.

One campaign is a small Jepsen-style experiment against the network
tier: a loopback server, a :class:`~repro.chaos.proxy.NetworkFaultProxy`
in front of it, N closed-loop worker clients committing through the
proxy, and a **nemesis** thread crash/recovering the database through
a direct (un-faulted) admin connection. Everything is seeded, so a
failing campaign replays.

**The workload** is a per-key counter: each transaction reads one key
and writes ``v + 1`` back as an absolute value. That shape is chosen
deliberately — every in-transaction frame is idempotent (a duplicated
``update`` sets the same value twice), so the *only* frame whose
duplication or loss can corrupt state is ``commit``, which is exactly
the exactly-once mechanism under test.

**The oracle** tracks, per key, a sound ``[min, max]`` bound on the
number of applied increments:

* a commit that returned (acked durable) advances both bounds;
* a commit that raised advances only ``max`` — the increment *may*
  have been applied (the lost-commit contract makes even a
  ``CrashedError`` ambiguous for engines whose logical commit is
  their durable point);
* ambiguous commits carry their commit token, and after the run the
  campaign **reconciles** each against the server's commit ledger:
  ``durable`` upgrades it to certain, ``unknown`` (the commit verb
  never started) removes it from ``max``.

A key whose final value falls outside its bounds is a violation — a
lost acked commit (below ``min``) or a double-applied retry (above
``max``). The campaign also checks the server leaked nothing:
no admission slots, no parked admission queue, no partition locks, no
group-commit waiters, no forever-pending ledger entries.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.schema import Column, ColumnType, Schema
from ..errors import (CrashedError, ProtocolError, ReproError,
                      RetryAfterError, ServerDisconnected, ServerError,
                      SessionError)
from .proxy import FaultConfig, FaultProxyThread

__all__ = ["ChaosConfig", "ChaosReport", "run_chaos_campaign"]


def _default_faults() -> FaultConfig:
    return FaultConfig(drop_p=0.02, delay_p=0.05,
                       delay_s=(0.0005, 0.004), truncate_p=0.01,
                       corrupt_p=0.01, duplicate_p=0.02,
                       blackhole_p=0.004)


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one chaos campaign."""

    clients: int = 4
    txns_per_client: int = 40
    keys: int = 64
    seed: int = 0xDB05
    engine: str = "nvm-inp"
    faults: FaultConfig = field(default_factory=_default_faults)
    #: Nemesis: crash/recover cycles and their pacing.
    crash_cycles: int = 2
    crash_interval_s: float = 0.4
    recover_after_s: float = 0.1
    table: str = "chaos_kv"
    #: Server hardening knobs exercised by the campaign.
    session_lease_s: float = 2.0
    max_admission_queue: Optional[int] = 32
    #: Worker client tuning: a short socket timeout turns a blackholed
    #: direction into a retryable disconnect instead of a hang.
    client_timeout_s: float = 1.0
    commit_deadline_s: float = 20.0
    max_attempts_per_txn: int = 400
    retry_sleep_s: float = 0.01
    #: Give up joining a worker after this much wall time (reported as
    #: a violation — the campaign never hangs CI).
    max_wall_s: float = 120.0


@dataclass
class ChaosReport:
    """What one campaign observed and whether the invariants held."""

    config: Dict[str, Any]
    committed: int = 0
    ambiguous: int = 0
    resolved_durable: int = 0
    resolved_not_applied: int = 0
    still_ambiguous: int = 0
    failed_attempts: int = 0
    crashes: int = 0
    recoveries: int = 0
    keys_checked: int = 0
    final_total: int = 0
    wall_seconds: float = 0.0
    proxy_stats: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config,
            "committed": self.committed,
            "ambiguous": self.ambiguous,
            "resolved_durable": self.resolved_durable,
            "resolved_not_applied": self.resolved_not_applied,
            "still_ambiguous": self.still_ambiguous,
            "failed_attempts": self.failed_attempts,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "keys_checked": self.keys_checked,
            "final_total": self.final_total,
            "wall_seconds": self.wall_seconds,
            "proxy_stats": dict(self.proxy_stats),
            "violations": list(self.violations),
            "ok": self.ok,
        }


def _schema(config: ChaosConfig) -> Schema:
    return Schema.build(
        config.table,
        [Column("k", ColumnType.INT), Column("v", ColumnType.INT)],
        primary_key=["k"])


class _ChaosWorker(threading.Thread):
    """One closed-loop client committing through the fault proxy."""

    def __init__(self, index: int, host: str, port: int,
                 config: ChaosConfig,
                 start_barrier: threading.Barrier) -> None:
        super().__init__(name=f"chaos-{index}", daemon=True)
        self.index = index
        self.host = host
        self.port = port
        self.config = config
        self.start_barrier = start_barrier
        #: key -> certainly-applied increments (acked commits).
        self.acked: Dict[int, int] = {}
        #: (key, token) of commits whose fate is unresolved.
        self.ambiguous: List[Tuple[int, str]] = []
        self.failed_attempts = 0
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            self._loop()
        except BaseException as exc:
            self.error = exc

    def _loop(self) -> None:
        from ..client import ReproClient

        config = self.config
        rng = random.Random(config.seed * 104729 + self.index)
        client = ReproClient(
            self.host, self.port, timeout=config.client_timeout_s,
            retries=4, retry_backoff_s=0.02,
            jitter_seed=config.seed * 31 + self.index)
        session = self._open(client, rng)
        self.start_barrier.wait(timeout=60.0)
        try:
            for _ in range(config.txns_per_client):
                session = self._one_txn(client, session, rng)
        finally:
            try:
                session.close()
            except ReproError:
                pass
            client.close()

    def _open(self, client, rng, label: str = ""):
        """Connect (through the proxy) and open a session, retrying
        through whatever the fault plan throws at the attempt."""
        for attempt in range(self.config.max_attempts_per_txn):
            try:
                if not client.connected:
                    client.connect()
                return client.session(
                    f"chaos-{self.index}{label}a{attempt}")
            except (ServerError, ProtocolError, CrashedError):
                client.close()
                time.sleep(self.config.retry_sleep_s
                           + rng.uniform(0, self.config.retry_sleep_s))
        raise RuntimeError(
            f"chaos worker {self.index} could not open a session")

    def _one_txn(self, client, session, rng):
        """Run one read-increment-write transaction to a classified
        outcome; returns the live session."""
        config = self.config
        key = rng.randrange(config.keys)
        for attempt in range(config.max_attempts_per_txn):
            token = None
            try:
                session.begin()
                row = session.get(config.table, key)
                session.update(config.table, key, {"v": row["v"] + 1})
                token = client.commit_token()
                session.commit(deadline=config.commit_deadline_s,
                               token=token)
                self.acked[key] = self.acked.get(key, 0) + 1
                return session
            except ReproError as exc:
                if token is not None:
                    # The commit verb itself failed: its fate is
                    # ambiguous until reconciled against the ledger.
                    self.ambiguous.append((key, token))
                    session = self._recover_session(client, session,
                                                    rng, exc)
                    return session
                self.failed_attempts += 1
                session = self._retry_setup(client, session, rng, exc)
        raise RuntimeError(
            f"chaos worker {self.index} gave up on key {key} after "
            f"{config.max_attempts_per_txn} attempts")

    def _retry_setup(self, client, session, rng, exc):
        """Recover from a pre-commit failure (nothing was applied)."""
        if isinstance(exc, RetryAfterError):
            time.sleep(rng.uniform(0, exc.retry_after_s * 2))
            return session
        if isinstance(exc, CrashedError):
            # Wait out the nemesis; the session survived the crash.
            time.sleep(self.config.retry_sleep_s)
            return session
        return self._recover_session(client, session, rng, exc)

    def _recover_session(self, client, session, rng, exc):
        """The session (or its connection) is suspect: replace it."""
        try:
            session.close()
        except ReproError:
            pass
        if isinstance(exc, (ServerDisconnected, ProtocolError)):
            client.close()
        return self._open(client, rng, label="r")


class _Nemesis(threading.Thread):
    """Crash/recover the database on a direct admin connection."""

    def __init__(self, host: str, port: int, config: ChaosConfig,
                 publisher=None) -> None:
        super().__init__(name="chaos-nemesis", daemon=True)
        self.host = host
        self.port = port
        self.config = config
        self.publisher = publisher
        self.crashes = 0
        self.recoveries = 0
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        from ..client import ReproClient

        try:
            client = ReproClient(self.host, self.port)
            client.connect()
            try:
                for cycle in range(self.config.crash_cycles):
                    time.sleep(self.config.crash_interval_s)
                    self._cycle(client, cycle)
            finally:
                client.close()
        except BaseException as exc:
            self.error = exc

    def _cycle(self, client, cycle: int) -> None:
        try:
            lost = client.crash().get("lost_commits", 0)
            self.crashes += 1
            if self.publisher is not None:
                self.publisher.publish("chaos_crash", cycle=cycle,
                                       lost_commits=lost)
        except ReproError:
            return                      # already crashed or closing
        time.sleep(self.config.recover_after_s)
        for _ in range(50):
            try:
                seconds = client.recover()
                self.recoveries += 1
                if self.publisher is not None:
                    self.publisher.publish("chaos_recover", cycle=cycle,
                                           seconds=seconds)
                return
            except ReproError:
                time.sleep(0.02)


def run_chaos_campaign(config: Optional[ChaosConfig] = None, *,
                       publisher=None) -> ChaosReport:
    """Run one full campaign on a loopback server; returns the report
    (``report.ok`` is the pass/fail verdict — no exceptions for
    invariant violations, so CI can attach the report on failure)."""
    from ..client import ReproClient
    from ..server import GroupCommitConfig, ServerConfig, ServerThread

    config = config or ChaosConfig()
    report = ChaosReport(config={
        "clients": config.clients,
        "txns_per_client": config.txns_per_client,
        "keys": config.keys,
        "seed": config.seed,
        "engine": config.engine,
        "crash_cycles": config.crash_cycles,
        "faults": {name: getattr(config.faults, name)
                   for name in ("seed", "drop_p", "delay_p",
                                "truncate_p", "corrupt_p",
                                "duplicate_p", "blackhole_p")},
    })
    if publisher is not None:
        publisher.publish("chaos_started", **report.config)
    server_config = ServerConfig(
        engine=config.engine, seed=config.seed,
        group_commit=GroupCommitConfig(batch_size=8,
                                       max_hold_wall_s=0.002),
        session_lease_s=config.session_lease_s,
        max_admission_queue=config.max_admission_queue,
        retry_after_s=0.02)
    started = time.perf_counter()
    with ServerThread(server_config) as server_thread:
        host, port = server_thread.server.address
        admin = ReproClient(host, port)
        admin.connect()
        try:
            _load(admin, config)
            with FaultProxyThread(host, port,
                                  config=config.faults) as proxy:
                proxy_host, proxy_port = proxy.proxy.address
                workers = _run_workers(proxy_host, proxy_port,
                                       host, port, config,
                                       report, publisher)
                report.proxy_stats = proxy.proxy.stats()
            _settle(admin, config)
            bounds = _reconcile(admin, workers, report)
            _check_state(admin, config, bounds, report)
            _check_leaks(admin, report)
        finally:
            admin.close()
    report.wall_seconds = time.perf_counter() - started
    if publisher is not None:
        publisher.publish("chaos_finished",
                          ok=report.ok,
                          committed=report.committed,
                          violations=list(report.violations))
    return report


def _load(admin, config: ChaosConfig) -> None:
    """Create and populate the counter table — and make it durable
    before the first fault or crash can touch it."""
    admin.create_table(_schema(config))
    with admin.session("chaos-loader") as session:
        for base in range(0, config.keys, 256):
            session.begin()
            for key in range(base, min(base + 256, config.keys)):
                session.insert(config.table, {"k": key, "v": 0})
            session.commit()
    admin.flush()


def _run_workers(proxy_host: str, proxy_port: int,
                 server_host: str, server_port: int,
                 config: ChaosConfig, report: ChaosReport,
                 publisher) -> List[_ChaosWorker]:
    barrier = threading.Barrier(config.clients)
    workers = [_ChaosWorker(i, proxy_host, proxy_port, config, barrier)
               for i in range(config.clients)]
    for worker in workers:
        worker.start()
    # The nemesis must bypass the proxy: a fault eating its crash or
    # recover exchange would leave the database crashed forever.
    nemesis = _Nemesis(server_host, server_port, config, publisher)
    nemesis.start()
    deadline = time.monotonic() + config.max_wall_s
    for worker in workers:
        worker.join(max(0.1, deadline - time.monotonic()))
        if worker.is_alive():
            report.violations.append(
                f"worker {worker.index} stalled past "
                f"{config.max_wall_s:g}s")
        elif worker.error is not None:
            report.violations.append(
                f"worker {worker.index} died: {worker.error!r}")
    nemesis.join(10.0)
    if nemesis.error is not None:
        report.violations.append(f"nemesis died: {nemesis.error!r}")
    report.crashes = nemesis.crashes
    report.recoveries = nemesis.recoveries
    report.committed = sum(sum(w.acked.values()) for w in workers)
    report.ambiguous = sum(len(w.ambiguous) for w in workers)
    report.failed_attempts = sum(w.failed_attempts for w in workers)
    return workers


def _settle(admin, config: ChaosConfig) -> None:
    """Bring the database to a quiescent, recovered, flushed state."""
    for _ in range(50):
        try:
            if admin.stats()["crashed"]:
                admin.recover()
            admin.flush()
            return
        except ReproError:
            time.sleep(0.02)


def _reconcile(admin, workers: List[_ChaosWorker],
               report: ChaosReport) -> Dict[int, Tuple[int, int]]:
    """Per-key ``[min, max]`` applied-increment bounds, tightened by
    asking the commit ledger about every ambiguous token."""
    certain: Dict[int, int] = {}
    unresolved: Dict[int, int] = {}
    for worker in workers:
        for key, count in worker.acked.items():
            certain[key] = certain.get(key, 0) + count
        for key, token in worker.ambiguous:
            try:
                fate = admin.commit_status(token).get("status")
            except ReproError:
                fate = "unreachable"
            if fate == "durable":
                certain[key] = certain.get(key, 0) + 1
                report.resolved_durable += 1
            elif fate == "unknown":
                # Never recorded: the commit verb never started, so
                # the increment was certainly not applied.
                report.resolved_not_applied += 1
            else:
                # pending / failed / forgotten / unreachable: keep the
                # increment inside the upper bound.
                unresolved[key] = unresolved.get(key, 0) + 1
                report.still_ambiguous += 1
    return {key: (certain.get(key, 0),
                  certain.get(key, 0) + unresolved.get(key, 0))
            for key in set(certain) | set(unresolved)}


def _check_state(admin, config: ChaosConfig,
                 bounds: Dict[int, Tuple[int, int]],
                 report: ChaosReport) -> None:
    """Every key's final value must sit inside its oracle bounds."""
    with admin.session("chaos-oracle") as session:
        session.begin()
        rows = dict(session.scan(config.table))
        session.abort()
    for key in range(config.keys):
        row = rows.get(key)
        if row is None:
            report.violations.append(f"key {key} vanished")
            continue
        low, high = bounds.get(key, (0, 0))
        value = row["v"]
        report.keys_checked += 1
        report.final_total += value
        if not low <= value <= high:
            report.violations.append(
                f"key {key}: final value {value} outside oracle "
                f"bounds [{low}, {high}]")


def _check_leaks(admin, report: ChaosReport) -> None:
    """After quiescence the server must hold no residual resources."""
    stats = admin.stats()
    admission = stats.get("admission", {})
    if admission.get("in_flight"):
        report.violations.append(
            f"leaked admission slots: in_flight="
            f"{admission.get('in_flight')}")
    if admission.get("queue"):
        report.violations.append(
            f"admission queue not drained: {admission.get('queue')}")
    if stats.get("locks_held"):
        report.violations.append(
            f"leaked partition locks: {stats.get('locks_held')}")
    for stage in stats.get("group_commit", []):
        if stage.get("pending"):
            report.violations.append(
                f"group-commit waiters leaked: {stage.get('pending')}")
    if stats.get("ledger", {}).get("pending"):
        report.violations.append(
            f"ledger entries stuck pending: "
            f"{stats['ledger']['pending']}")
