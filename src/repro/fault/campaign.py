"""Systematic crash-point recovery campaigns.

A campaign answers the question the paper's Section 5.4 recovery
experiments leave open: does every engine actually *survive* a power
failure at every interesting instant, not just recover quickly? It

1. runs a scripted single-operation workload once per engine with the
   fault injector in **counting mode**, recording how often every
   registered fault point is hit;
2. re-runs the identical workload once per ``(point, hit)``
   **coordinate**, arming a :class:`~repro.fault.injector.FaultPlan`
   that crashes the platform mid-operation at exactly that instant;
3. recovers — possibly through *nested* crashes when the plan also
   targets a recovery-phase point — and checks a tracking **oracle**:
   every acknowledged transaction's effect must survive, every
   unacknowledged transaction must be atomic (fully applied or fully
   absent, disambiguated by reading the row back), and no phantom rows
   may appear.

Coordinates fan out across worker processes through the experiment
scheduler (:func:`~repro.harness.scheduler.run_sweep`), so a campaign
is parallel, deterministic, and crash-isolated like any other sweep.

The campaign schema is deliberately a single table without secondary
indexes: the NVM-CoW engine's master-record flip is atomic per
directory, not across directories, so multi-index batches have a
documented partial-flip window (see ``docs/fault-injection.md``).

This module is imported explicitly (``from repro.fault import
campaign``) rather than re-exported by the package, because it pulls in
the database/engine stack that itself imports the injector.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import CacheConfig, EngineConfig, PlatformConfig
from ..core.database import Database
from ..core.schema import Column, ColumnType, Schema
from ..errors import SimulatedCrash, StorageEngineError
from ..harness.scheduler import PointOutcome, run_sweep
from ..obs import bus as _bus
from ..obs.bus import (DEFAULT_HEARTBEAT_S, BusPublisher, EventBus,
                       HeartbeatEmitter)
from ..obs.profiler import PhaseProfiler
from .injector import FaultPlan, fault_points_for_engine

__all__ = ["CampaignSpec", "CampaignPointResult", "CampaignReport",
           "run_crash_campaign", "build_script", "plan_coordinates"]

TABLE = "crashtest"

#: Keys the scripted workload draws from — small enough that updates
#: and deletes keep landing on rows with history.
KEY_SPACE = 25

#: Key used by the post-recovery operational probe; never produced by
#: the script, so the oracle ignores it.
SENTINEL_KEY = 9999

#: Recovery attempts before the oracle declares the database stuck.
MAX_NESTED_RECOVERIES = 10

#: Shared disabled profiler: phase scopes become no-ops, so internal
#: helpers can profile unconditionally.
_NULL_PROFILER = PhaseProfiler(enabled=False)


def _schema() -> Schema:
    return Schema.build(
        TABLE,
        [Column("id", ColumnType.INT),
         Column("v", ColumnType.STRING, capacity=16)],
        primary_key=["id"])


def _make_database(engine: str, seed: int) -> Database:
    """A deliberately harsh configuration: every commit is durable the
    moment it is acknowledged (group commit of 1 — the oracle's
    invariant), checkpoints/flushes/compactions all happen within a
    short script, and *no* dirty cache line survives a crash by luck
    (eviction probability 0), so a missing fence always loses data."""
    platform_config = PlatformConfig(
        seed=seed,
        cache=CacheConfig(crash_eviction_probability=0.0))
    engine_config = EngineConfig(
        group_commit_size=1,
        checkpoint_interval_txns=12,
        memtable_threshold_bytes=512,
        lsm_max_runs_per_level=2,
        btree_node_size=256,
        cow_btree_node_size=512,
        nvm_cow_node_size=512)
    db = Database(engine=engine, partitions=1,
                  platform_config=platform_config,
                  engine_config=engine_config)
    db.create_table(_schema())
    return db


def build_script(seed: int, ops: int
                 ) -> List[Tuple[str, int, Optional[str]]]:
    """The deterministic single-operation workload: ``(op, key,
    value)`` triples mixing inserts, updates, and deletes over a small
    key space. Every written value is unique, so the oracle can tell
    *which* version of a row survived."""
    rng = random.Random(f"crashtest-{seed}")
    live: set = set()
    script: List[Tuple[str, int, Optional[str]]] = []
    for i in range(ops):
        value = f"v{i:04d}"
        choices = []
        if len(live) < KEY_SPACE:
            choices.append("insert")
        if live:
            choices.extend(["update", "update", "delete"])
        op = rng.choice(choices)
        if op == "insert":
            key = rng.choice(
                [k for k in range(KEY_SPACE) if k not in live])
            live.add(key)
        else:
            key = rng.choice(sorted(live))
            if op == "delete":
                live.discard(key)
        script.append((op, key, None if op == "delete" else value))
    return script


def _apply_expected(expected: Dict[int, str], op: str, key: int,
                    value: Optional[str]) -> None:
    if op == "delete":
        expected.pop(key, None)
    else:
        expected[key] = value


@dataclass
class CampaignPointResult:
    """What one campaign run (counting or coordinate) observed."""

    engine: str
    seed: int
    triggers: Tuple[Tuple[str, int], ...]
    #: Simulated crashes, including nested crash-during-recovery ones.
    crashes: int = 0
    recoveries: int = 0
    nested_crashes: int = 0
    ops_applied: int = 0
    #: Fault-point name -> times the workload passed through it.
    hits: Dict[str, int] = field(default_factory=dict)
    #: ``(point, hit)`` triggers that actually fired.
    fired: Tuple[Tuple[str, int], ...] = ()
    #: Oracle violations — empty means the run survived intact.
    violations: List[str] = field(default_factory=list)
    #: Phase profile (wall-vs-sim attribution; telemetry runs only).
    phases: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "engine": self.engine,
            "seed": self.seed,
            "triggers": [list(pair) for pair in self.triggers],
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "nested_crashes": self.nested_crashes,
            "ops_applied": self.ops_applied,
            "hits": dict(sorted(self.hits.items())),
            "fired": [list(pair) for pair in self.fired],
            "violations": list(self.violations),
            "ok": self.ok,
        }
        # Wall-clock side-band data: only present on telemetry runs, so
        # default campaign reports stay identical with or without it.
        if self.phases is not None:
            payload["phases"] = self.phases
        return payload


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign run: a scripted workload against one engine, with
    an optional fault plan. Picklable, deterministic, and runnable by
    the experiment scheduler (it provides its own :meth:`execute`)."""

    engine: str
    seed: int = 7
    ops: int = 64
    #: ``(point, hit)`` pairs; empty means counting mode (no crashes).
    triggers: Tuple[Tuple[str, int], ...] = ()
    observe: bool = False

    def slug(self) -> str:
        if not self.triggers:
            return f"crashtest-{self.engine}-s{self.seed}-count"
        coordinate = "+".join(f"{point}@{hit}"
                              for point, hit in self.triggers)
        return (f"crashtest-{self.engine}-s{self.seed}-"
                f"{coordinate.replace('.', '_')}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "crashtest",
            "engine": self.engine,
            "seed": self.seed,
            "ops": self.ops,
            "triggers": [list(pair) for pair in self.triggers],
        }

    # ------------------------------------------------------------------
    # Execution + oracle
    # ------------------------------------------------------------------

    def execute(self, obs=None,
                database: Optional[Database] = None,
                telemetry=None) -> CampaignPointResult:
        """Run the scripted workload under this spec's fault plan and
        verify the oracle after every recovery. ``database`` lets tests
        substitute a sabotaged engine; it must use the campaign schema.
        ``telemetry`` (a :class:`~repro.obs.bus.TelemetryPublisher`)
        streams heartbeats — with crash/recovery counters — and phase
        transitions while the point runs, and attaches the phase
        profile to the result."""
        result = CampaignPointResult(engine=self.engine, seed=self.seed,
                                     triggers=self.triggers)
        profiler = PhaseProfiler(publisher=telemetry,
                                 enabled=telemetry is not None)
        profiler.start()
        with profiler.phase("setup"):
            db = database if database is not None \
                else _make_database(self.engine, self.seed)
        if obs is not None:
            obs.attach(db, self.engine, "crashtest")
        heartbeat = None
        if telemetry is not None:
            heartbeat = HeartbeatEmitter(
                telemetry, db,
                extra=lambda: {"crashes": result.crashes,
                               "recoveries": result.recoveries,
                               "ops": result.ops_applied})
            heartbeat.install()
        try:
            self._run_script(db, result, profiler)
        finally:
            if heartbeat is not None:
                heartbeat.uninstall()
        db.disarm_faults()
        if obs is not None:
            obs.detach(db)
        with profiler.phase("teardown", db):
            db.close()
        profiler.stop()
        if profiler.enabled:
            result.phases = profiler.to_dict()
        return result

    def _run_script(self, db: Database, result: CampaignPointResult,
                    profiler: PhaseProfiler) -> None:
        db.arm_faults(FaultPlan(self.triggers))
        expected: Dict[int, str] = {}
        with profiler.phase("load", db):
            script = build_script(self.seed, self.ops)
        index = 0
        with profiler.phase("run", db):
            while index < len(script):
                op, key, value = script[index]
                try:
                    if op == "insert":
                        db.insert(TABLE, {"id": key, "v": value})
                    elif op == "update":
                        db.update(TABLE, key, {"v": value})
                    else:
                        db.delete(TABLE, key)
                except SimulatedCrash:
                    result.crashes += 1
                    self._recover(db, result, profiler)
                    # The interrupted transaction was never
                    # acknowledged, so either outcome is legal — but it
                    # must be atomic. Read the row to learn which way
                    # recovery decided.
                    if self._op_applied(db, op, key, value):
                        _apply_expected(expected, op, key, value)
                        index += 1
                    self._verify(db, expected, result,
                                 f"after crash at op {index}", profiler)
                    continue
                except StorageEngineError as exc:
                    # A correct engine never rejects a script op: the
                    # oracle keeps `expected` in lockstep with the
                    # database. An engine error here means recovery
                    # silently diverged.
                    result.violations.append(
                        f"op {index} ({op} {key}): "
                        f"{type(exc).__name__}: {exc}")
                    break
                _apply_expected(expected, op, key, value)
                result.ops_applied += 1
                index += 1
        # Final clean crash + recovery: exercises the recovery-phase
        # fault points every run and catches any commit whose
        # durability silently depended on volatile state.
        db.crash()
        result.crashes += 1
        self._recover(db, result, profiler)
        self._verify(db, expected, result, "final", profiler)
        self._probe(db, result, profiler)
        result.hits = db.fault_hits()
        result.fired = tuple(
            (trigger.point, trigger.hit)
            for partition in db.partitions
            for trigger in partition.platform.faults.fired)

    def _recover(self, db: Database, result: CampaignPointResult,
                 profiler: PhaseProfiler = _NULL_PROFILER) -> None:
        """Recover, riding out nested crash-during-recovery faults."""
        with profiler.phase("recovery", db):
            for __ in range(MAX_NESTED_RECOVERIES):
                try:
                    db.recover()
                except SimulatedCrash:
                    result.crashes += 1
                    result.nested_crashes += 1
                    continue
                result.recoveries += 1
                return
            result.violations.append(
                f"stuck-recovery: not recovered after "
                f"{MAX_NESTED_RECOVERIES} attempts")

    def _op_applied(self, db: Database, op: str, key: int,
                    value: Optional[str]) -> bool:
        row = db.get(TABLE, key)
        if op == "delete":
            return row is None
        return row is not None and row["v"] == value

    def _verify(self, db: Database, expected: Dict[int, str],
                result: CampaignPointResult, when: str,
                profiler: PhaseProfiler = _NULL_PROFILER) -> None:
        """The oracle: the surviving rows must be exactly the expected
        (acknowledged) state."""
        with profiler.phase("verify", db):
            rows = {key: values["v"]
                    for key, values in db.scan(TABLE)}
        for key, value in sorted(expected.items()):
            if key not in rows:
                result.violations.append(
                    f"{when}: lost committed row {key} "
                    f"(expected {value!r})")
            elif rows[key] != value:
                result.violations.append(
                    f"{when}: row {key} is {rows[key]!r}, "
                    f"expected {value!r}")
        for key in sorted(rows):
            if key not in expected and key != SENTINEL_KEY:
                result.violations.append(
                    f"{when}: phantom row {key} = {rows[key]!r}")

    def _probe(self, db: Database, result: CampaignPointResult,
               profiler: PhaseProfiler = _NULL_PROFILER) -> None:
        """Operational sentinel: the recovered database must still take
        writes, not just answer reads."""
        for __ in range(2):
            try:
                if db.get(TABLE, SENTINEL_KEY) is None:
                    db.insert(TABLE, {"id": SENTINEL_KEY, "v": "probe"})
                row = db.get(TABLE, SENTINEL_KEY)
                if row is None or row["v"] != "probe":
                    result.violations.append(
                        "sentinel: probe row unreadable after recovery")
                db.delete(TABLE, SENTINEL_KEY)
                return
            except SimulatedCrash:
                # A leftover trigger fired mid-probe; recover and retry.
                result.crashes += 1
                self._recover(db, result, profiler)
            except Exception as exc:
                result.violations.append(
                    f"sentinel: {type(exc).__name__}: {exc}")
                return
        result.violations.append(
            "sentinel: probe kept crashing after recovery")


# ----------------------------------------------------------------------
# Campaign orchestration
# ----------------------------------------------------------------------

def plan_coordinates(engine: str, hits: Dict[str, int],
                     max_hits_per_point: int = 3
                     ) -> List[Tuple[Tuple[str, int], ...]]:
    """Turn a counting run's hit profile into the crash coordinates to
    explore: for every in-operation point, up to ``max_hits_per_point``
    sampled hits (always the first and the last); for every
    recovery-phase point, a nested plan that crashes in-operation
    first and then again during the resulting recovery."""
    points = fault_points_for_engine(engine)
    data_points = [p for p in points if not p.startswith("recovery.")]
    recovery_points = [p for p in points if p.startswith("recovery.")]
    coordinates: List[Tuple[Tuple[str, int], ...]] = []
    first_data: Optional[str] = None
    for point in data_points:
        total = hits.get(point, 0)
        if total <= 0:
            continue
        if first_data is None:
            first_data = point
        sampled = {1, total, (1 + total) // 2}
        for hit in sorted(sampled)[:max_hits_per_point]:
            coordinates.append(((point, hit),))
    for point in recovery_points:
        if hits.get(point, 0) <= 0:
            continue
        if first_data is not None:
            coordinates.append(((first_data, 1), (point, 1)))
        else:
            coordinates.append(((point, 1),))
    return coordinates


@dataclass
class CampaignReport:
    """Everything a crash campaign learned, per engine and per point."""

    engines: Tuple[str, ...]
    seed: int
    counting: Dict[str, CampaignPointResult]
    outcomes: List[PointOutcome]
    #: engine -> registered points the counting run never even reached.
    uncovered: Dict[str, List[str]]

    @property
    def violations(self) -> List[str]:
        found: List[str] = []
        for engine, counting in sorted(self.counting.items()):
            found.extend(f"{engine}[counting]: {violation}"
                         for violation in counting.violations)
        for outcome in self.outcomes:
            if outcome.result is not None:
                found.extend(
                    f"{outcome.spec.engine}[{outcome.spec.slug()}]: "
                    f"{violation}"
                    for violation in outcome.result.violations)
        return found

    @property
    def failures(self) -> List[str]:
        return [f"{outcome.spec.slug()}: {outcome.error}"
                for outcome in self.outcomes if not outcome.ok]

    @property
    def ok(self) -> bool:
        return not self.violations and not self.failures \
            and not any(self.uncovered.values())

    def point_rows(self) -> List[List[str]]:
        """Per-(engine, point) aggregation for the CLI table."""
        stats: Dict[Tuple[str, str], Dict[str, int]] = {}
        for outcome in self.outcomes:
            spec = outcome.spec
            target = spec.triggers[-1][0] if spec.triggers else "-"
            entry = stats.setdefault((spec.engine, target), {
                "coords": 0, "crashes": 0, "violations": 0,
                "failures": 0})
            entry["coords"] += 1
            if outcome.result is not None:
                entry["crashes"] += outcome.result.crashes
                entry["violations"] += len(outcome.result.violations)
            if not outcome.ok:
                entry["failures"] += 1
        rows = []
        for (engine, point), entry in sorted(stats.items()):
            status = "ok"
            if entry["failures"]:
                status = "FAILED"
            elif entry["violations"]:
                status = "VIOLATED"
            rows.append([engine, point, str(entry["coords"]),
                         str(entry["crashes"]),
                         str(entry["violations"]), status])
        for engine in self.engines:
            for point in self.uncovered.get(engine, []):
                rows.append([engine, point, "0", "0", "0", "UNCOVERED"])
        return rows

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "repro-crashtest-report",
            "engines": list(self.engines),
            "seed": self.seed,
            "ok": self.ok,
            "uncovered": {engine: list(points) for engine, points
                          in sorted(self.uncovered.items())},
            "violations": self.violations,
            "failures": self.failures,
            "counting": {engine: counting.to_dict() for engine, counting
                         in sorted(self.counting.items())},
            "coordinates": [{
                "spec": outcome.spec.to_dict(),
                "ok": outcome.ok,
                "error": outcome.error,
                "attempts": outcome.attempts,
                "result": (outcome.result.to_dict()
                           if outcome.result is not None else None),
            } for outcome in self.outcomes],
        }


def run_crash_campaign(engines: Sequence[str], seed: int = 7,
                       ops: int = 64, jobs: int = 1,
                       max_hits_per_point: int = 3,
                       timeout_s: Optional[float] = None,
                       retries: int = 1, observe: bool = False,
                       artifacts_dir: Optional[str] = None,
                       bus: Optional[EventBus] = None,
                       heartbeat_s: float = DEFAULT_HEARTBEAT_S
                       ) -> CampaignReport:
    """The full campaign: count fault-point hits per engine, then
    systematically crash at every sampled ``(point, hit)`` coordinate
    and verify recovery with the oracle.

    ``bus`` streams live telemetry: the counting phase publishes
    ``campaign_started`` / per-engine ``campaign_counted`` events plus
    its own heartbeats, and the coordinate sweep streams point
    lifecycle events and worker heartbeats like any other sweep."""
    counting: Dict[str, CampaignPointResult] = {}
    uncovered: Dict[str, List[str]] = {}
    specs: List[CampaignSpec] = []
    if bus is not None:
        bus.publish(_bus.CAMPAIGN_STARTED, source="campaign",
                    engines=list(engines), seed=seed, ops=ops)
    for engine in engines:
        publisher = BusPublisher(bus, source=f"count-{engine}",
                                 heartbeat_s=heartbeat_s) \
            if bus is not None else None
        count_spec = CampaignSpec(engine=engine, seed=seed, ops=ops)
        count_result = count_spec.execute(telemetry=publisher) \
            if publisher is not None else count_spec.execute()
        counting[engine] = count_result
        uncovered[engine] = [
            point for point in fault_points_for_engine(engine)
            if count_result.hits.get(point, 0) <= 0]
        coordinates = plan_coordinates(engine, count_result.hits,
                                       max_hits_per_point)
        for triggers in coordinates:
            specs.append(CampaignSpec(engine=engine, seed=seed, ops=ops,
                                      triggers=triggers,
                                      observe=observe))
        if bus is not None:
            bus.publish(_bus.CAMPAIGN_COUNTED, source=f"count-{engine}",
                        engine=engine, coordinates=len(coordinates),
                        points_hit=len(count_result.hits),
                        uncovered=len(uncovered[engine]))
    outcomes = run_sweep(specs, jobs=jobs, timeout_s=timeout_s,
                         retries=retries, observe=observe,
                         artifacts_dir=artifacts_dir, bus=bus,
                         heartbeat_s=heartbeat_s)
    return CampaignReport(engines=tuple(engines), seed=seed,
                          counting=counting, outcomes=outcomes,
                          uncovered=uncovered)
