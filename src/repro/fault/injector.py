"""Deterministic fault injection: named crash points in durability code.

Every module that participates in a durability protocol registers its
crash-able program points in a global catalog
(:func:`register_fault_point`) and calls
``injector.fire("wal.append.before")`` at each of them. The injector is
disabled by default — ``fire`` is a single attribute check on the hot
path — and is armed with a :class:`FaultPlan`: an ordered list of
``(point, hit)`` triggers. When the *hit*-th matching hit of the current
trigger arrives, the injector raises
:class:`~repro.errors.SimulatedCrash`, which
:class:`~repro.core.database.Database` converts into a full platform
crash (CPU-cache eviction lottery + filesystem pending-write rollback).
Plans with multiple triggers model nested crashes: the second trigger
becomes current only after the first has fired, so
``[("wal.append.before", 3), ("recovery.begin", 1)]`` crashes the third
WAL append and then crashes again at the start of the recovery that
follows.

While armed (even with an empty plan) the injector also *counts* every
hit per point — the campaign driver uses a counting run to enumerate the
``(point, hit)`` crash coordinates it will then explore systematically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigError, SimulatedCrash

__all__ = ["FaultPoint", "FaultPlan", "FaultInjector",
           "register_fault_point", "fault_point_catalog",
           "fault_points_for_engine"]


@dataclass(frozen=True)
class FaultPointSpec:
    """Catalog entry: a registered fault point and where it applies."""

    name: str
    description: str
    #: Engine names the point can fire for; ``None`` means every engine
    #: (generic recovery points).
    engines: Optional[Tuple[str, ...]] = None


_CATALOG: Dict[str, FaultPointSpec] = {}


def register_fault_point(name: str, description: str,
                         engines: Optional[Sequence[str]] = None) -> str:
    """Register a fault point in the global catalog (idempotent; called
    at import time by instrumented modules). Returns ``name`` so a
    module can bind it to a constant."""
    _CATALOG[name] = FaultPointSpec(
        name, description, tuple(engines) if engines else None)
    return name


def fault_point_catalog() -> Dict[str, FaultPointSpec]:
    """A copy of the registered fault-point catalog."""
    return dict(_CATALOG)


def fault_points_for_engine(engine: str) -> List[str]:
    """Sorted names of every fault point applicable to ``engine``."""
    return sorted(
        name for name, spec in _CATALOG.items()
        if spec.engines is None or engine in spec.engines)


# The generic recovery checkpoints are fired by every engine's
# ``recover()`` and are registered here (rather than per-engine) because
# they are cross-cutting: they are what makes crash-during-recovery and
# repeated-crash scenarios expressible as ordinary plan triggers.
register_fault_point(
    "recovery.begin", "recovery procedure entered (any engine)")
register_fault_point(
    "recovery.end", "recovery procedure about to return (any engine)")
register_fault_point(
    "recovery.checkpoint_loaded",
    "InP recovery: checkpoint snapshot loaded, WAL not yet replayed",
    engines=("inp",))
register_fault_point(
    "recovery.wal_replayed",
    "redo recovery: committed WAL entries replayed, before epilogue",
    engines=("inp", "log"))
register_fault_point(
    "recovery.wal_undone",
    "undo recovery: in-flight NVM WAL transactions rolled back",
    engines=("nvm-inp", "nvm-log"))


@dataclass(frozen=True)
class FaultPoint:
    """One plan trigger: crash at the ``hit``-th matching hit of
    ``point`` (counted while the trigger is current)."""

    point: str
    hit: int = 1

    def __post_init__(self) -> None:
        if self.hit < 1:
            raise ConfigError(f"fault trigger hit must be >= 1, "
                              f"got {self.hit} for {self.point!r}")


TriggerLike = Union[FaultPoint, Tuple[str, int], str]


class FaultPlan:
    """An ordered sequence of :class:`FaultPoint` triggers, consumed
    front to back. Accepts ``FaultPoint`` instances, ``(point, hit)``
    tuples, or ``"point"`` / ``"point:hit"`` strings."""

    def __init__(self, triggers: Iterable[TriggerLike] = ()) -> None:
        normalized: List[FaultPoint] = []
        for trigger in triggers:
            if isinstance(trigger, FaultPoint):
                normalized.append(trigger)
            elif isinstance(trigger, str):
                point, _, hit = trigger.partition(":")
                normalized.append(FaultPoint(point, int(hit or 1)))
            else:
                point, hit = trigger
                normalized.append(FaultPoint(point, int(hit)))
        self.triggers: Tuple[FaultPoint, ...] = tuple(normalized)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse ``"point:hit,point:hit"`` (hit defaults to 1)."""
        parts = [part.strip() for part in text.split(",") if part.strip()]
        return cls(parts)

    def __bool__(self) -> bool:
        return bool(self.triggers)

    def __repr__(self) -> str:
        inner = ", ".join(f"{t.point}:{t.hit}" for t in self.triggers)
        return f"FaultPlan([{inner}])"


class FaultInjector:
    """Per-platform fault-point switchboard.

    Disabled by default; :meth:`arm` enables hit counting and installs an
    optional :class:`FaultPlan`. ``stats``/``tracer`` are the owning
    platform's collectors — a triggered crash bumps ``fault.crashes``
    and emits a ``fault.crash`` trace event so campaigns show up in the
    observability layer.
    """

    def __init__(self, stats=None, tracer=None) -> None:
        self.enabled = False
        #: Persistence-ordering observer: receives every fault-point
        #: hit (armed or not) so ordering traces carry crash-point
        #: markers. ``None`` costs one attribute check per fire.
        self.observer = None
        #: Hits per point since the last :meth:`arm`.
        self.hits: Dict[str, int] = {}
        #: Triggers that have fired, in order.
        self.fired: List[FaultPoint] = []
        self._stats = stats
        self._tracer = tracer
        self._triggers: Tuple[FaultPoint, ...] = ()
        self._cursor = 0
        self._progress = 0

    def arm(self, plan: Optional[FaultPlan] = None) -> None:
        """Enable the injector: count hits and (when ``plan`` is
        non-empty) crash at each trigger in order. Unknown point names
        raise :class:`~repro.errors.ConfigError` up front."""
        triggers = plan.triggers if plan is not None else ()
        for trigger in triggers:
            if trigger.point not in _CATALOG:
                known = ", ".join(sorted(_CATALOG))
                raise ConfigError(
                    f"unknown fault point {trigger.point!r}; "
                    f"registered points: {known}")
        self._triggers = tuple(triggers)
        self._cursor = 0
        self._progress = 0
        self.hits = {}
        self.fired = []
        self.enabled = True

    def disarm(self) -> None:
        """Disable the injector; counters keep their last values."""
        self.enabled = False

    @property
    def pending_triggers(self) -> Tuple[FaultPoint, ...]:
        """Triggers that have not fired yet."""
        return self._triggers[self._cursor:]

    def fire(self, point: str) -> None:
        """Hot-path hook: a no-op while disabled. While armed, count the
        hit and raise :class:`~repro.errors.SimulatedCrash` if it
        completes the current trigger."""
        if self.observer is not None:
            self.observer.on_fault_point(point)
        if not self.enabled:
            return
        self.hits[point] = self.hits.get(point, 0) + 1
        if self._cursor >= len(self._triggers):
            return
        trigger = self._triggers[self._cursor]
        if point != trigger.point:
            return
        self._progress += 1
        if self._progress < trigger.hit:
            return
        self._cursor += 1
        self._progress = 0
        self.fired.append(trigger)
        if self._stats is not None:
            self._stats.bump("fault.crashes")
        if self._tracer is not None:
            self._tracer.event("fault.crash", point=point,
                               hit=trigger.hit)
        raise SimulatedCrash(
            f"simulated power failure at fault point {point!r} "
            f"(hit {trigger.hit})", point=point, hit=trigger.hit)
