"""Fault injection: deterministic crash points and recovery campaigns.

This package only re-exports the injector primitives here; the campaign
driver lives in :mod:`repro.fault.campaign` and must be imported
explicitly (``from repro.fault import campaign``) because it pulls in
the database/engine stack, which itself imports the injector — eager
re-export would create an import cycle.
"""

from .injector import (FaultInjector, FaultPlan, FaultPoint,
                       fault_point_catalog, fault_points_for_engine,
                       register_fault_point)

__all__ = ["FaultInjector", "FaultPlan", "FaultPoint",
           "fault_point_catalog", "fault_points_for_engine",
           "register_fault_point"]
