"""Checkpointer for the in-place updates engine (Section 3.1).

The InP engine "periodically takes checkpoints that are stored on the
filesystem to bound recovery latency and reduce the storage space
consumed by the log", compressing them with gzip. A checkpoint is a
serialized snapshot of every table's committed tuples in the inlined
layout; recovery loads the last checkpoint and then replays the WAL.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Dict, Iterator, Tuple

from ..core.schema import Schema
from ..core.tuple_codec import decode_inlined, encode_inlined
from ..nvm.filesystem import NVMFilesystem

_RECORD = struct.Struct("<HI")  # table id, record length

#: Simulated CPU cost of (de)compression, ns per uncompressed byte.
COMPRESS_NS_PER_BYTE = 0.4


class Checkpointer:
    """Writes and reads gzip-compressed table snapshots."""

    def __init__(self, filesystem: NVMFilesystem, clock,
                 file_name: str = "checkpoint/snapshot") -> None:
        self._fs = filesystem
        self._clock = clock
        self.file_name = file_name
        self.checkpoints_taken = 0

    def write(self, tables: Dict[str, Tuple[Schema, Iterator[Dict[str, Any]]]]
              ) -> int:
        """Serialize, compress, and durably store a snapshot.

        ``tables`` maps table name -> (schema, iterator of tuple value
        dicts). Table ids are assigned by sorted table name. Returns
        the compressed size in bytes.
        """
        parts = []
        for table_id, name in enumerate(sorted(tables)):
            schema, rows = tables[name]
            for values in rows:
                record = encode_inlined(schema, values)
                parts.append(_RECORD.pack(table_id, len(record)))
                parts.append(record)
        raw = b"".join(parts)
        self._clock.advance(len(raw) * COMPRESS_NS_PER_BYTE)
        compressed = zlib.compress(raw, level=6)
        file = self._fs.open(self.file_name, create=True)
        self._fs.truncate(file, 0)
        self._fs.append(file, compressed)
        self._fs.fsync(file)
        self.checkpoints_taken += 1
        return len(compressed)

    def read(self, schemas_by_name: Dict[str, Schema]
             ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield (table name, tuple values) from the last checkpoint."""
        if not self._fs.exists(self.file_name):
            return
        file = self._fs.open(self.file_name)
        compressed = self._fs.read_all(file)
        if not compressed:
            return
        raw = zlib.decompress(compressed)
        self._clock.advance(len(raw) * COMPRESS_NS_PER_BYTE)
        names = sorted(schemas_by_name)
        offset = 0
        while offset < len(raw):
            table_id, record_length = _RECORD.unpack_from(raw, offset)
            offset += _RECORD.size
            name = names[table_id]
            schema = schemas_by_name[name]
            record = raw[offset:offset + record_length]
            offset += record_length
            yield name, decode_inlined(schema, record)

    @property
    def size_bytes(self) -> int:
        if not self._fs.exists(self.file_name):
            return 0
        return self._fs.open(self.file_name).size
