"""Checkpointer for the in-place updates engine (Section 3.1).

The InP engine "periodically takes checkpoints that are stored on the
filesystem to bound recovery latency and reduce the storage space
consumed by the log", compressing them with gzip. A checkpoint is a
serialized snapshot of every table's committed tuples in the inlined
layout; recovery loads the last checkpoint and then replays the WAL.

Snapshots are double-buffered: each checkpoint is written and fsync'd
into the *inactive* slot file (``<name>.0`` / ``<name>.1``) and only
then installed by atomically flipping a one-byte pointer file. A crash
at any instant therefore leaves a complete previous snapshot readable —
overwriting the live snapshot in place would have a window (between its
truncation, which the PMFS-style filesystem makes durable immediately,
and the replacement's fsync) where a crash destroys committed data that
the since-truncated WAL no longer covers.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Dict, Iterator, Optional, Tuple

from ..core.schema import Schema
from ..core.tuple_codec import decode_inlined, encode_inlined
from ..fault.injector import FaultInjector, register_fault_point
from ..nvm.filesystem import NVMFilesystem

_RECORD = struct.Struct("<HI")  # table id, record length

#: Simulated CPU cost of (de)compression, ns per uncompressed byte.
COMPRESS_NS_PER_BYTE = 0.4

register_fault_point(
    "checkpoint.write.before_fsync",
    "snapshot written to the inactive slot, not yet fsync'd",
    engines=("inp",))
register_fault_point(
    "checkpoint.write.after_fsync",
    "snapshot durable in the inactive slot, pointer not yet flipped",
    engines=("inp",))
register_fault_point(
    "checkpoint.swap.after_write",
    "pointer byte written in place, not yet fsync'd",
    engines=("inp",))


class Checkpointer:
    """Writes and reads gzip-compressed, double-buffered snapshots."""

    def __init__(self, filesystem: NVMFilesystem, clock,
                 file_name: str = "checkpoint/snapshot",
                 faults: FaultInjector = None) -> None:
        self._fs = filesystem
        self._clock = clock
        self.file_name = file_name
        self._pointer_name = f"{file_name}.current"
        self.checkpoints_taken = 0
        self._faults = faults if faults is not None else FaultInjector()

    def _slot_name(self, slot: int) -> str:
        return f"{self.file_name}.{slot}"

    def _active_slot(self) -> Optional[int]:
        """Slot the pointer file designates, or None before the first
        completed checkpoint."""
        if not self._fs.exists(self._pointer_name):
            return None
        data = self._fs.read_all(self._fs.open(self._pointer_name))
        if not data or data[:1] not in (b"0", b"1"):
            return None
        return int(data[:1])

    def write(self, tables: Dict[str, Tuple[Schema, Iterator[Dict[str, Any]]]]
              ) -> int:
        """Serialize, compress, and durably store a snapshot.

        ``tables`` maps table name -> (schema, iterator of tuple value
        dicts). Table ids are assigned by sorted table name. Returns
        the compressed size in bytes.
        """
        parts = []
        for table_id, name in enumerate(sorted(tables)):
            schema, rows = tables[name]
            for values in rows:
                record = encode_inlined(schema, values)
                parts.append(_RECORD.pack(table_id, len(record)))
                parts.append(record)
        raw = b"".join(parts)
        self._clock.advance(len(raw) * COMPRESS_NS_PER_BYTE)
        compressed = zlib.compress(raw, level=6)

        active = self._active_slot()
        target = 0 if active != 0 else 1
        file = self._fs.open(self._slot_name(target), create=True)
        self._fs.truncate(file, 0)
        self._fs.append(file, compressed)
        self._faults.fire("checkpoint.write.before_fsync")
        self._fs.fsync(file)
        self._faults.fire("checkpoint.write.after_fsync")

        # Install: flip the one-byte pointer in place. The write is
        # covered by the filesystem's pending-write rollback until the
        # fsync, so a crash either keeps the old snapshot or installs
        # the new one — never neither.
        pointer = self._fs.open(self._pointer_name, create=True)
        byte = b"0" if target == 0 else b"1"
        if pointer.size == 0:
            self._fs.append(pointer, byte)
        else:
            self._fs.write(pointer, 0, byte)
        self._faults.fire("checkpoint.swap.after_write")
        self._fs.fsync(pointer)

        # The superseded slot is now garbage; reclaim its space.
        if active is not None:
            self._fs.truncate(self._fs.open(self._slot_name(active)), 0)
        self.checkpoints_taken += 1
        return len(compressed)

    def read(self, schemas_by_name: Dict[str, Schema]
             ) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield (table name, tuple values) from the last checkpoint."""
        active = self._active_slot()
        if active is None:
            return
        file = self._fs.open(self._slot_name(active))
        compressed = self._fs.read_all(file)
        if not compressed:
            return
        raw = zlib.decompress(compressed)
        self._clock.advance(len(raw) * COMPRESS_NS_PER_BYTE)
        names = sorted(schemas_by_name)
        offset = 0
        while offset < len(raw):
            table_id, record_length = _RECORD.unpack_from(raw, offset)
            offset += _RECORD.size
            name = names[table_id]
            schema = schemas_by_name[name]
            record = raw[offset:offset + record_length]
            offset += record_length
            yield name, decode_inlined(schema, record)

    @property
    def size_bytes(self) -> int:
        active = self._active_slot()
        if active is None:
            return 0
        return self._fs.open(self._slot_name(active)).size
