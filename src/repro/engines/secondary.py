"""Shared secondary index maintenance over B+tree indexes.

Secondary indexes map a secondary key to the set of primary keys with
that value (Section 3.2). These helpers keep them consistent across
insert / update / delete for any engine whose secondary indexes are
(volatile or non-volatile) B+trees.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.schema import Schema
from ..index.stx_btree import STXBTree


def secondary_add(schema: Schema, indexes: Dict[str, STXBTree],
                  key: Any, values: Dict[str, Any]) -> None:
    """Register ``key`` under each secondary index for ``values``."""
    for index_name in schema.secondary_indexes:
        seckey = schema.index_key_of(index_name, values)
        index = indexes[index_name]
        members = index.get(seckey)
        if members is None:
            index.put(seckey, {key})
        else:
            members.add(key)
            index.put(seckey, members)  # charge the node write


def secondary_remove(schema: Schema, indexes: Dict[str, STXBTree],
                     key: Any, values: Dict[str, Any]) -> None:
    """Remove ``key`` from each secondary index for ``values``."""
    for index_name in schema.secondary_indexes:
        seckey = schema.index_key_of(index_name, values)
        index = indexes[index_name]
        members = index.get(seckey)
        if members is None:
            continue
        members.discard(key)
        if members:
            index.put(seckey, members)
        else:
            index.delete(seckey)


def secondary_update(schema: Schema, indexes: Dict[str, STXBTree],
                     key: Any, old_values: Dict[str, Any],
                     new_values: Dict[str, Any]) -> None:
    """Move ``key`` between secondary entries whose key changed."""
    for index_name, columns in schema.secondary_indexes.items():
        old_key = schema.index_key_of(index_name, old_values)
        new_key = schema.index_key_of(index_name, new_values)
        if old_key == new_key:
            continue
        index = indexes[index_name]
        members = index.get(old_key)
        if members is not None:
            members.discard(key)
            if members:
                index.put(old_key, members)
            else:
                index.delete(old_key)
        members = index.get(new_key)
        if members is None:
            index.put(new_key, {key})
        else:
            members.add(key)
            index.put(new_key, members)
