"""Non-volatile write-ahead log (Sections 4.1, 4.3).

The NVM-aware engines store the WAL "as a non-volatile linked list.
[The engine] appends new entries to the list using an atomic write."
Instead of copying tuple contents into the log, entries record
**non-volatile pointers** to the tuples (and, for updates, the
before-images of the changed inline fields needed for undo) — this is
the data-duplication saving that Table 3 models as ``p`` versus ``T``.

Because committed changes are persisted immediately, the log never
needs a redo pass: at commit the transaction's entries are truncated,
and recovery only walks the entries of transactions that were active
at the time of failure, undoing them. Recovery latency therefore
depends only on the number of in-flight transactions (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..fault.injector import FaultInjector, register_fault_point
from ..nvm.allocator import Allocation, NVMAllocator
from ..nvm.memory import NVMMemory
from ..nvm.pointers import NULL_PTR, NVPtr

#: Accounted bytes of an entry's fixed header (txn id, op, table id,
#: previous-entry pointer, key digest).
ENTRY_HEADER_SIZE = 32

register_fault_point(
    "nvm_wal.append.after_persist",
    "entry synced to NVM, anchor pointer not yet linked",
    engines=("nvm-inp", "nvm-log", "nvm-mvcc"))
register_fault_point(
    "nvm_wal.append.after_link",
    "entry durably linked into the transaction's list",
    engines=("nvm-inp", "nvm-log", "nvm-mvcc"))
register_fault_point(
    "nvm_wal.truncate.before",
    "commit point: transaction's entries about to be truncated",
    engines=("nvm-inp", "nvm-log", "nvm-mvcc"))


@dataclass(frozen=True)
class NVMWalRecord:
    """Payload of one non-volatile WAL entry."""

    op: str                       # "insert" | "update" | "delete"
    table: str
    key: Any
    tuple_ptr: NVPtr = NULL_PTR   # non-volatile pointer to the tuple slot
    before_fields: bytes = b""    # changed inline fields' before-image
    before_varlen: Tuple[Tuple[str, NVPtr], ...] = ()
    after_varlen: Tuple[Tuple[str, NVPtr], ...] = ()
    extra: Any = None             # engine-specific undo payload

    @property
    def content_size(self) -> int:
        """Accounted NVM bytes of this record beyond the header."""
        return (8 if self.tuple_ptr != NULL_PTR else 0) \
            + len(self.before_fields) \
            + 8 * (len(self.before_varlen) + len(self.after_varlen))


@dataclass
class _TxnLog:
    head: NVPtr = NULL_PTR
    entries: List[Allocation] = field(default_factory=list)


class NVMWal:
    """Per-transaction non-volatile linked lists of WAL entries."""

    def __init__(self, allocator: NVMAllocator, memory: NVMMemory,
                 tag: str = "log",
                 faults: FaultInjector = None) -> None:
        self._allocator = allocator
        self._memory = memory
        self._tag = tag
        # The list-head anchor is an 8-byte durable location updated
        # with an atomic durable write on every append.
        self._anchor = allocator.malloc(8, tag=tag)
        allocator.persist(self._anchor)
        self._logs: Dict[int, _TxnLog] = {}
        self._faults = faults if faults is not None else FaultInjector()

    def append(self, txn_id: int, record: NVMWalRecord) -> Allocation:
        """Durably append ``record`` to the transaction's list."""
        log = self._logs.setdefault(txn_id, _TxnLog())
        size = ENTRY_HEADER_SIZE + record.content_size
        entry = self._allocator.malloc_object(record, size, tag=self._tag)
        # Persist the entry, then atomically link it (Section 4.1:
        # "persists this entry before updating the slot's state").
        self._allocator.sync(entry)
        self._faults.fire("nvm_wal.append.after_persist")
        self._memory.atomic_durable_store_u64(
            self._anchor.addr, entry.addr,
            publishes=((entry.addr, entry.size),))
        log.entries.append(entry)
        log.head = entry.addr
        self._faults.fire("nvm_wal.append.after_link")
        return entry

    def truncate_txn(self, txn_id: int) -> int:
        """Drop a committed transaction's entries ("after all of the
        transaction's changes are safely persisted, the engine
        truncates the log"). Returns entries freed."""
        self._faults.fire("nvm_wal.truncate.before")
        log = self._logs.pop(txn_id, None)
        if log is None:
            return 0
        for entry in log.entries:
            if self._allocator.resolve_optional(entry.addr) is entry:
                self._allocator.free(entry)
        return len(log.entries)

    def active_txn_ids(self) -> List[int]:
        """Transactions with untruncated entries (in-flight at crash)."""
        return sorted(self._logs)

    def entries_for(self, txn_id: int) -> List[NVMWalRecord]:
        """The transaction's records in append order (reads charge NVM
        loads — recovery walks the non-volatile list)."""
        log = self._logs.get(txn_id)
        if log is None:
            return []
        records = []
        for entry in log.entries:
            self._memory.touch_read(entry.addr, entry.size)
            records.append(entry.obj)
        return records

    def iter_uncommitted(self) -> Iterator[Tuple[int, List[NVMWalRecord]]]:
        for txn_id in self.active_txn_ids():
            yield txn_id, self.entries_for(txn_id)

    @property
    def size_bytes(self) -> int:
        return sum(entry.size for log in self._logs.values()
                   for entry in log.entries)

    @property
    def entry_count(self) -> int:
        return sum(len(log.entries) for log in self._logs.values())

    def head_ptr(self) -> Optional[NVPtr]:
        value = self._memory.load_u64(self._anchor.addr)
        return value or None
