"""Filesystem-resident write-ahead log with group commit (Section 3.1).

Each entry records "the transaction identifier, the table modified, the
tuple identifier, and the before/after tuple images depending on the
operation". Entries are appended through the filesystem interface;
durability is deferred to a group-commit ``flush`` (one ``fsync`` per
batch), which is what the traditional engines do to amortize the
assumed-slow durable storage.

The serialized format is compact and self-describing so the log can be
replayed for redo/undo after a crash — and so that the log's byte
footprint tracks the analytical cost model of Table 3 (full tuple
images for inserts/deletes, changed-field images for updates).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator

from ..core.tuple_codec import decode_key, encode_key
from ..fault.injector import FaultInjector, register_fault_point
from ..nvm.filesystem import NVMFile, NVMFilesystem

_HEADER = struct.Struct("<IBQH")  # entry length, op, txn id, table id

register_fault_point(
    "wal.append.before",
    "filesystem WAL: before the entry bytes are appended",
    engines=("inp", "log"))
register_fault_point(
    "wal.append.after",
    "filesystem WAL: entry appended but not yet fsync'd",
    engines=("inp", "log"))
register_fault_point(
    "wal.fsync.before",
    "group-commit boundary: entries pending, before the WAL fsync",
    engines=("inp", "log"))
register_fault_point(
    "wal.fsync.after",
    "group-commit boundary: right after the WAL fsync",
    engines=("inp", "log"))

OP_INSERT = 1
OP_UPDATE = 2
OP_DELETE = 3
OP_COMMIT = 4
OP_ABORT = 5

OP_NAMES = {OP_INSERT: "insert", OP_UPDATE: "update", OP_DELETE: "delete",
            OP_COMMIT: "commit", OP_ABORT: "abort"}


@dataclass(frozen=True)
class WALEntry:
    """One write-ahead log record."""

    op: int
    txn_id: int
    table_id: int = 0
    key: object = None
    before: bytes = b""
    after: bytes = b""

    def encode(self) -> bytes:
        key_bytes = encode_key(self.key) if self.key is not None else b""
        body = (struct.pack("<I", len(key_bytes)) + key_bytes
                + struct.pack("<I", len(self.before)) + self.before
                + struct.pack("<I", len(self.after)) + self.after)
        header = _HEADER.pack(len(body), self.op, self.txn_id,
                              self.table_id)
        return header + body

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "tuple[WALEntry, int]":
        body_length, op, txn_id, table_id = _HEADER.unpack_from(
            data, offset)
        cursor = offset + _HEADER.size
        key_length = struct.unpack_from("<I", data, cursor)[0]
        cursor += 4
        key: object = None
        if key_length:
            key, __ = decode_key(data, cursor)
        cursor += key_length
        before_length = struct.unpack_from("<I", data, cursor)[0]
        cursor += 4
        before = bytes(data[cursor:cursor + before_length])
        cursor += before_length
        after_length = struct.unpack_from("<I", data, cursor)[0]
        cursor += 4
        after = bytes(data[cursor:cursor + after_length])
        cursor += after_length
        entry = cls(op, txn_id, table_id, key, before, after)
        return entry, _HEADER.size + body_length


class WriteAheadLog:
    """Append-only WAL on the NVM filesystem."""

    def __init__(self, filesystem: NVMFilesystem,
                 file_name: str = "wal/log",
                 faults: FaultInjector = None) -> None:
        self._fs = filesystem
        self._file: NVMFile = filesystem.open(file_name, create=True)
        self.file_name = file_name
        self._faults = faults if faults is not None else FaultInjector()

    def append(self, entry: WALEntry) -> None:
        """Append an entry (durable only after :meth:`flush`)."""
        self._faults.fire("wal.append.before")
        self._fs.append(self._file, entry.encode())
        self._faults.fire("wal.append.after")

    def flush(self) -> None:
        """Group-commit boundary: fsync the log (skipped when nothing
        was appended since the last flush)."""
        if self._file.pending_bytes:
            self._faults.fire("wal.fsync.before")
            self._fs.fsync(self._file)
            self._faults.fire("wal.fsync.after")

    def replay(self) -> Iterator[WALEntry]:
        """Iterate over every entry currently in the log."""
        data = self._fs.read_all(self._file)
        offset = 0
        while offset + _HEADER.size <= len(data):
            body_length = _HEADER.unpack_from(data, offset)[0]
            if offset + _HEADER.size + body_length > len(data):
                break  # torn tail write — ignore (never fsync'd)
            entry, consumed = WALEntry.decode(data, offset)
            yield entry
            offset += consumed

    def committed_txn_ids(self) -> set:
        """Transaction ids with a commit record in the log."""
        return {entry.txn_id for entry in self.replay()
                if entry.op == OP_COMMIT}

    def truncate(self) -> None:
        """Discard the log (after a checkpoint made it redundant)."""
        self._fs.truncate(self._file, 0)

    def pending_bytes(self) -> int:
        """Appended bytes not yet made durable by an fsync."""
        return self._file.pending_bytes

    @property
    def size_bytes(self) -> int:
        return self._file.size


def group_entries_by_txn(entries: Iterator[WALEntry]
                         ) -> Dict[int, list]:
    """Bucket data entries (not commit/abort markers) per transaction."""
    by_txn: Dict[int, list] = {}
    for entry in entries:
        if entry.op in (OP_COMMIT, OP_ABORT):
            continue
        by_txn.setdefault(entry.txn_id, []).append(entry)
    return by_txn
