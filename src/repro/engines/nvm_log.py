"""NVM-aware log-structured updates engine (NVM-Log, Section 4.3).

The Log engine's batching exists to turn random durable-storage writes
into sequential ones — a benefit that mostly evaporates on NVM. The
NVM-Log engine therefore:

* keeps **all MemTables on NVM** via the allocator interface. Instead
  of flushing to a filesystem SSTable, a full MemTable is simply
  *marked immutable* (same physical layout, writes stop) and a new
  mutable MemTable starts;
* records only **non-volatile pointers** to tuple modifications in a
  non-volatile WAL whose sole purpose is *undo* of uncommitted
  transactions — MemTable entries are synced as they are written, so
  no redo pass exists and the WAL is truncated per transaction at
  commit;
* compacts by **merging immutable MemTables** into a new larger
  MemTable (with a Bloom filter each to skip runs on reads);
* uses non-volatile B+trees for MemTable and secondary indexes — no
  rebuild after restart, so recovery latency depends only on the
  transactions in flight at the crash (Fig. 12).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from ..config import EngineConfig
from ..core.schema import Schema
from ..core.tuple_codec import encode_fields, encode_inlined
from ..core.transaction import Transaction
from ..errors import DuplicateKeyError, TupleNotFoundError
from ..fault.injector import register_fault_point
from ..index.cost import NVMIndexCostModel
from ..index.nv_btree import NVBTree
from ..nvm.platform import Platform
from ..sim.stats import Category
from .base import register_engine
from .log_engine import LogEngine, _LogTable
from .lsm.compaction import chain_has_base, merge_entry_chains
from .lsm.memtable import (ENTRY_DELTA, ENTRY_PUT, ENTRY_TOMBSTONE,
                           MemTable)
from .nvm_wal import NVMWal, NVMWalRecord
from .secondary import secondary_add, secondary_remove, secondary_update

register_fault_point(
    "memtable.roll.before",
    "full MemTable about to be marked immutable",
    engines=("nvm-log",))
register_fault_point(
    "memtable.roll.after",
    "immutable MemTable installed, new mutable MemTable started",
    engines=("nvm-log",))


@register_engine
class NVMLogEngine(LogEngine):
    """Log-structured updates with all-NVM MemTables and undo-only WAL."""

    name = "nvm-log"
    is_nvm_aware = True
    memtable_persistent = True

    def __init__(self, platform: Platform, config: EngineConfig) -> None:
        super().__init__(platform, config)
        self._nvm_wal = NVMWal(self.allocator, self.memory, tag="log",
                               faults=self.faults)

    def _make_secondary_index(self) -> NVBTree:
        cost = NVMIndexCostModel(self.allocator, self.memory, tag="index",
                                 persistent=True)
        return NVBTree(node_size=self.config.btree_node_size,
                       cost_model=cost)

    def _create_table_storage(self, schema: Schema) -> None:
        super()._create_table_storage(schema)
        store = self._tables[schema.table]
        #: Leveled immutable MemTables, mirroring the Log engine's
        #: SSTable levels: mem_levels[i] is a list of runs (oldest
        #: first); compaction merges a full level one level down.
        store.mem_levels: List[List[MemTable]] = []  # type: ignore

    # ------------------------------------------------------------------
    # Read path across MemTable + immutable MemTables
    # ------------------------------------------------------------------

    def _collect_chain(self, store: _LogTable,
                       key: Any) -> List[Tuple[str, bytes]]:
        segments: List[List[Tuple[str, bytes]]] = []
        with self.stats.category(Category.INDEX):
            chain = [(entry.kind, entry.data)
                     for entry in store.memtable.get_chain(key)]
        segments.append(chain)
        if not chain_has_base(chain):
            done = False
            for level in store.mem_levels:
                for run in reversed(level):  # newest first
                    with self.stats.category(Category.INDEX):
                        chain = [(entry.kind, entry.data)
                                 for entry in run.get_chain(key)]
                    if chain:
                        segments.append(chain)
                        if chain_has_base(chain):
                            done = True
                            break
                if done:
                    break
        segments.reverse()
        return merge_entry_chains(segments)

    def scan(self, txn: Transaction, table: str, lo: Any = None,
             hi: Any = None) -> Iterator[Tuple[Any, Dict[str, Any]]]:
        store = self._table(table)
        keys = set(store.memtable.keys_in_range(lo, hi))
        for level in store.mem_levels:
            for run in level:
                keys.update(run.keys_in_range(lo, hi))
        for key in sorted(keys):
            values = self._get(store, key)
            if values is not None:
                yield key, values

    # ------------------------------------------------------------------
    # Primitive operations (Table 2, NVM-Log column)
    # ------------------------------------------------------------------

    def insert(self, txn: Transaction, table: str,
               values: Dict[str, Any]) -> None:
        txn.require_active()
        store = self._table(table)
        schema = store.schema
        key = schema.key_of(values)
        if self._get(store, key) is not None:
            raise DuplicateKeyError(f"{table}: key {key!r} exists")
        image = encode_inlined(schema, values)
        # Sync tuple with NVM (entry alloc + sync inside add), record
        # the pointer in the WAL, sync the log entry, index it.
        with self.stats.category(Category.STORAGE):
            entry = store.memtable.add(key, ENTRY_PUT, image)
        with self.stats.category(Category.RECOVERY):
            self._nvm_wal.append(txn.txn_id, NVMWalRecord(
                "insert", table, key,
                tuple_ptr=entry.allocation.addr, extra=(entry, values)))
        with self.stats.category(Category.INDEX):
            secondary_add(schema, store.secondary, key, values)
        txn.engine_state.setdefault("undo", []).append(
            ("insert", table, key, entry, values))

    def update(self, txn: Transaction, table: str, key: Any,
               changes: Dict[str, Any]) -> None:
        txn.require_active()
        store = self._table(table)
        schema = store.schema
        schema.validate_partial(changes)
        old_values = self._get(store, key)
        if old_values is None:
            raise TupleNotFoundError(f"{table}: no tuple with key {key!r}")
        before = {name: old_values[name] for name in changes}
        delta = encode_fields(schema, changes)
        with self.stats.category(Category.STORAGE):
            entry = store.memtable.add(key, ENTRY_DELTA, delta)
        new_values = dict(old_values)
        new_values.update(changes)
        # WAL: changed-field before-image + pointer (Table 3: F + p).
        with self.stats.category(Category.RECOVERY):
            self._nvm_wal.append(txn.txn_id, NVMWalRecord(
                "update", table, key,
                tuple_ptr=entry.allocation.addr,
                before_fields=encode_fields(schema, before),
                extra=(entry, old_values, new_values)))
        with self.stats.category(Category.INDEX):
            secondary_update(schema, store.secondary, key, old_values,
                             new_values)
        txn.engine_state.setdefault("undo", []).append(
            ("update", table, key, entry, old_values, new_values))

    def delete(self, txn: Transaction, table: str, key: Any) -> None:
        txn.require_active()
        store = self._table(table)
        schema = store.schema
        old_values = self._get(store, key)
        if old_values is None:
            raise TupleNotFoundError(f"{table}: no tuple with key {key!r}")
        with self.stats.category(Category.STORAGE):
            entry = store.memtable.add(key, ENTRY_TOMBSTONE, b"")
        with self.stats.category(Category.RECOVERY):
            self._nvm_wal.append(txn.txn_id, NVMWalRecord(
                "delete", table, key,
                tuple_ptr=entry.allocation.addr,
                extra=(entry, old_values)))
        with self.stats.category(Category.INDEX):
            secondary_remove(schema, store.secondary, key, old_values)
        txn.engine_state.setdefault("undo", []).append(
            ("delete", table, key, entry, old_values))

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def _do_commit(self, txn: Transaction) -> None:
        # Entries are already durable; just truncate the txn's log,
        # then roll the MemTable if it crossed its threshold.
        with self.tracer.span("wal.truncate", txn=txn.txn_id):
            self._nvm_wal.truncate_txn(txn.txn_id)
        for name, store in self._tables.items():
            if store.memtable.size_bytes >= \
                    self.config.memtable_threshold_bytes:
                self._roll_memtable(name, store)

    def _do_flush_commits(self) -> None:
        """Commits are durable immediately — nothing to flush."""

    def _do_abort(self, txn: Transaction) -> None:
        self._undo_txn(txn)
        self._nvm_wal.truncate_txn(txn.txn_id)

    def checkpoint(self) -> None:
        """NVM-Log takes no checkpoints — MemTables are already durable
        and recovery is undo-only."""

    # ------------------------------------------------------------------
    # MemTable rolling & compaction (no filesystem involved)
    # ------------------------------------------------------------------

    def _roll_memtable(self, name: str, store: _LogTable) -> None:
        """Mark the MemTable immutable and start a new one — the
        NVM-Log replacement for flushing an SSTable (Section 4.3)."""
        if not len(store.memtable):
            return
        self.faults.fire("memtable.roll.before")
        with self.stats.category(Category.STORAGE), \
                self.tracer.span("memtable.roll", table=name,
                                 entries=len(store.memtable),
                                 bytes=store.memtable.size_bytes):
            store.memtable.mark_immutable()
            if not store.mem_levels:
                store.mem_levels.append([])
            store.mem_levels[0].append(store.memtable)
            store.memtable = self._make_memtable()
            self.stats.bump("lsm.memtable_rolls")
        self.faults.fire("memtable.roll.after")
        self._maybe_compact_immutables(name, store)

    def _maybe_compact_immutables(self, name: str,
                                  store: _LogTable) -> None:
        """Leveled compaction over immutable MemTables: when a level
        holds too many runs, merge "a set of these MemTables to
        generate a new larger MemTable" one level down (Section 4.3)."""
        level = 0
        while level < len(store.mem_levels):
            runs = store.mem_levels[level]
            if len(runs) <= self.config.lsm_max_runs_per_level:
                level += 1
                continue
            with self.stats.category(Category.STORAGE), \
                    self.tracer.span("compaction.merge", table=name,
                                     level=level, runs=len(runs)):
                self.faults.fire("compaction.merge.before")
                is_bottom = not any(store.mem_levels[level + 1:])
                merged = self._merge_memtables(runs, is_bottom)
                if level + 1 >= len(store.mem_levels):
                    store.mem_levels.append([])
                store.mem_levels[level + 1].append(merged)
                for run in runs:
                    run.destroy()
                store.mem_levels[level] = []
                self.stats.bump("lsm.compactions")
            level += 1

    def _merge_memtables(self, runs: List[MemTable],
                         is_bottom: bool) -> MemTable:
        chains: Dict[Any, List] = {}
        for run in runs:  # oldest first
            for key, chain in run.chains():
                pairs = [(entry.kind, entry.data) for entry in chain]
                chains.setdefault(key, []).append(pairs)
        merged = self._make_memtable()
        for key in sorted(chains):
            chain = merge_entry_chains(chains[key])
            if is_bottom and chain and chain[-1][0] == ENTRY_TOMBSTONE:
                continue  # bottom of the tree: purge tombstones
            for kind, data in chain:
                merged.add(key, kind, data)
        merged.mark_immutable()
        return merged

    # ------------------------------------------------------------------
    # Restart events
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        """MemTables (mutable and immutable) and all indexes are
        non-volatile — nothing is lost."""
        self._pending_durable.clear()
        self._commits_since_flush = 0

    def recover(self) -> float:
        """Undo-only recovery: remove the MemTable entries of
        transactions in flight at the crash (Section 4.3)."""
        start_ns = self.clock.now_ns
        self.faults.fire("recovery.begin")
        with self.stats.category(Category.RECOVERY), \
                self.tracer.span("recovery.total", engine=self.name):
            with self.tracer.span("recovery.wal_undo") as span:
                self._nvm_wal.head_ptr()  # locate the log on NVM
                undone = 0
                for txn_id in self._nvm_wal.active_txn_ids():
                    records = self._nvm_wal.entries_for(txn_id)
                    for record in reversed(records):
                        self._undo_wal_record(record)
                    self._nvm_wal.truncate_txn(txn_id)
                    undone += 1
                if span:
                    span.tag(txns=undone)
            self.faults.fire("recovery.wal_undone")
        self.faults.fire("recovery.end")
        return self.clock.elapsed_since(start_ns) / 1e9

    def _undo_wal_record(self, record: NVMWalRecord) -> None:
        store = self._table(record.table)
        if record.op == "insert":
            entry, values = record.extra
            store.memtable.remove_entry(record.key, entry)
            secondary_remove(store.schema, store.secondary, record.key,
                             values)
        elif record.op == "update":
            entry, old_values, new_values = record.extra
            store.memtable.remove_entry(record.key, entry)
            secondary_update(store.schema, store.secondary, record.key,
                             new_values, old_values)
        else:
            entry, old_values = record.extra
            store.memtable.remove_entry(record.key, entry)
            secondary_add(store.schema, store.secondary, record.key,
                          old_values)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def storage_breakdown(self) -> Dict[str, int]:
        by_tag = self.allocator.bytes_by_tag()
        return {
            "table": by_tag.get("table", 0),
            "index": by_tag.get("index", 0),
            "log": by_tag.get("log", 0),
            "checkpoint": 0,
            "other": by_tag.get("other", 0),
        }
