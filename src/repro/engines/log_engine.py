"""Log-structured updates engine (Log, Section 3.3).

Modeled on LevelDB: tuple modifications are first recorded in a
filesystem WAL, then applied to the MemTable. When the MemTable exceeds
its threshold it is flushed as an immutable SSTable file (with a Bloom
filter), and a leveled compaction process periodically merges runs to
bound read amplification. Reads must coalesce a tuple's entries across
the MemTable and however many runs contain them — the engine's
characteristic read amplification.

Recovery rebuilds the MemTable from the WAL (redo committed, skip
uncommitted), reopens every SSTable (rebuilding their volatile indexes
and Bloom filters), and reconstructs the secondary indexes.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..config import EngineConfig
from ..core.schema import Schema
from ..core.tuple_codec import (decode_fields, decode_inlined,
                                encode_fields, encode_inlined)
from ..core.transaction import Transaction
from ..errors import DuplicateKeyError, TupleNotFoundError
from ..fault.injector import register_fault_point
from ..index.cost import NVMIndexCostModel
from ..index.stx_btree import STXBTree
from ..nvm.platform import Platform
from ..sim.stats import Category
from . import wal as walmod
from .base import StorageEngine, register_engine
from .lsm.compaction import (chain_has_base, coalesce_entries,
                             merge_entry_chains)
from .lsm.memtable import (ENTRY_DELTA, ENTRY_PUT, ENTRY_TOMBSTONE,
                           MemTable)
from .lsm.sstable import SSTable
from .secondary import secondary_add, secondary_remove, secondary_update
from .wal import WALEntry, WriteAheadLog

register_fault_point(
    "memtable.flush.before",
    "MemTable about to be flushed to a level-0 SSTable",
    engines=("log",))
register_fault_point(
    "memtable.flush.after_write",
    "SSTable durably written, WAL not yet truncated",
    engines=("log",))
register_fault_point(
    "compaction.merge.before",
    "level overflow detected, compaction merge about to run",
    engines=("log", "nvm-log"))


class _LogTable:
    """Per-table LSM tree for the Log engine."""

    # ``mem_levels`` is the NVM-Log subclass's extension slot (its
    # leveled immutable MemTables); declared here so the slotted
    # layout covers the whole engine family.
    __slots__ = ("schema", "memtable", "levels", "secondary",
                 "sstable_ids", "mem_levels")

    def __init__(self, schema: Schema, engine: "LogEngine") -> None:
        self.schema = schema
        self.memtable = engine._make_memtable()
        #: levels[i] is a list of runs, oldest first; level i+1 holds
        #: runs produced by compacting level i.
        self.levels: List[List[SSTable]] = []
        self.secondary: Dict[str, STXBTree] = {
            name: engine._make_secondary_index()
            for name in schema.secondary_indexes
        }
        self.sstable_ids = itertools.count(0)


@register_engine
class LogEngine(StorageEngine):
    """Log-structured updates with a filesystem WAL and SSTables."""

    name = "log"
    is_nvm_aware = False
    memtable_persistent = False

    def __init__(self, platform: Platform, config: EngineConfig) -> None:
        super().__init__(platform, config)
        self._tables: Dict[str, _LogTable] = {}
        self._wal = WriteAheadLog(platform.filesystem,
                                  faults=platform.faults)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _make_memtable(self) -> MemTable:
        return MemTable(self.allocator, self.memory,
                        node_size=self.config.btree_node_size,
                        persistent=self.memtable_persistent,
                        bloom_bits_per_key=self.config.bloom_bits_per_key,
                        bloom_hashes=self.config.bloom_hashes)

    def _make_secondary_index(self) -> STXBTree:
        cost = NVMIndexCostModel(self.allocator, self.memory, tag="index",
                                 persistent=False)
        return STXBTree(node_size=self.config.btree_node_size,
                        cost_model=cost)

    def _make_sstable_index(self) -> STXBTree:
        """Volatile per-SSTable index, charged as index NVM traffic."""
        cost = NVMIndexCostModel(self.allocator, self.memory, tag="index",
                                 persistent=False)
        tree = STXBTree(node_size=self.config.btree_node_size,
                        cost_model=cost)
        tree.cost_model = cost  # lets the SSTable release it on delete
        return tree

    def _create_table_storage(self, schema: Schema) -> None:
        self._tables[schema.table] = _LogTable(schema, self)

    def _table(self, name: str) -> _LogTable:
        self._schema(name)
        return self._tables[name]

    def _table_id(self, name: str) -> int:
        return sorted(self.schemas).index(name)

    def _table_name(self, table_id: int) -> str:
        return sorted(self.schemas)[table_id]

    # ------------------------------------------------------------------
    # Read path: tuple coalescing across LSM runs
    # ------------------------------------------------------------------

    def _collect_chain(self, store: _LogTable,
                       key: Any) -> List[Tuple[str, bytes]]:
        """Gather the key's entries from newest run to the run holding
        its base record, then return them oldest-first."""
        segments: List[List[Tuple[str, bytes]]] = []
        with self.stats.category(Category.INDEX):
            memtable_chain = [(entry.kind, entry.data) for entry
                              in store.memtable.get_chain(key)]
        segments.append(memtable_chain)
        if not chain_has_base(memtable_chain):
            done = False
            for level in store.levels:
                for run in reversed(level):  # newest run first
                    # Per-run look-ups (Bloom probe + run index descent
                    # + entry fetch) are the LSM index accesses that
                    # dominate the Log engines' Fig. 13 breakdown.
                    with self.stats.category(Category.INDEX):
                        chain = run.get_chain(key)
                    if chain:
                        segments.append(chain)
                        if chain_has_base(chain):
                            done = True
                            break
                if done:
                    break
        segments.reverse()  # oldest first
        return merge_entry_chains(segments)

    def _get(self, store: _LogTable, key: Any) -> Optional[Dict[str, Any]]:
        chain = self._collect_chain(store, key)
        if not chain:
            return None
        schema = store.schema
        return coalesce_entries(
            chain,
            decode_full=lambda data: decode_inlined(schema, data),
            decode_delta=lambda data: decode_fields(schema, data))

    # ------------------------------------------------------------------
    # Primitive operations (Table 2)
    # ------------------------------------------------------------------

    def insert(self, txn: Transaction, table: str,
               values: Dict[str, Any]) -> None:
        txn.require_active()
        store = self._table(table)
        schema = store.schema
        key = schema.key_of(values)
        if self._get(store, key) is not None:
            raise DuplicateKeyError(f"{table}: key {key!r} exists")
        image = encode_inlined(schema, values)
        with self.stats.category(Category.RECOVERY):
            self._wal.append(WALEntry(
                walmod.OP_INSERT, txn.txn_id, self._table_id(table),
                key=key, after=image))
        with self.stats.category(Category.STORAGE):
            entry = store.memtable.add(key, ENTRY_PUT, image)
        with self.stats.category(Category.INDEX):
            secondary_add(schema, store.secondary, key, values)
        txn.engine_state.setdefault("undo", []).append(
            ("insert", table, key, entry, values))

    def update(self, txn: Transaction, table: str, key: Any,
               changes: Dict[str, Any]) -> None:
        txn.require_active()
        store = self._table(table)
        schema = store.schema
        schema.validate_partial(changes)
        old_values = self._get(store, key)
        if old_values is None:
            raise TupleNotFoundError(f"{table}: no tuple with key {key!r}")
        before = {name: old_values[name] for name in changes}
        with self.stats.category(Category.RECOVERY):
            self._wal.append(WALEntry(
                walmod.OP_UPDATE, txn.txn_id, self._table_id(table),
                key=key,
                before=encode_fields(schema, before),
                after=encode_fields(schema, changes)))
        with self.stats.category(Category.STORAGE):
            entry = store.memtable.add(key, ENTRY_DELTA,
                                       encode_fields(schema, changes))
        new_values = dict(old_values)
        new_values.update(changes)
        with self.stats.category(Category.INDEX):
            secondary_update(schema, store.secondary, key, old_values,
                             new_values)
        txn.engine_state.setdefault("undo", []).append(
            ("update", table, key, entry, old_values, new_values))

    def delete(self, txn: Transaction, table: str, key: Any) -> None:
        txn.require_active()
        store = self._table(table)
        schema = store.schema
        old_values = self._get(store, key)
        if old_values is None:
            raise TupleNotFoundError(f"{table}: no tuple with key {key!r}")
        with self.stats.category(Category.RECOVERY):
            self._wal.append(WALEntry(
                walmod.OP_DELETE, txn.txn_id, self._table_id(table),
                key=key, before=encode_inlined(schema, old_values)))
        with self.stats.category(Category.STORAGE):
            entry = store.memtable.add(key, ENTRY_TOMBSTONE, b"")
        with self.stats.category(Category.INDEX):
            secondary_remove(schema, store.secondary, key, old_values)
        txn.engine_state.setdefault("undo", []).append(
            ("delete", table, key, entry, old_values))

    def select(self, txn: Transaction, table: str,
               key: Any) -> Optional[Dict[str, Any]]:
        return self._get(self._table(table), key)

    def select_secondary(self, txn: Transaction, table: str,
                         index_name: str, key: Any) -> List[Any]:
        store = self._table(table)
        with self.stats.category(Category.INDEX):
            members = store.secondary[index_name].get(key)
        return sorted(members) if members else []

    def scan(self, txn: Transaction, table: str, lo: Any = None,
             hi: Any = None) -> Iterator[Tuple[Any, Dict[str, Any]]]:
        store = self._table(table)
        keys = set(store.memtable.keys_in_range(lo, hi))
        for level in store.levels:
            for run in level:
                for key in run.keys():
                    if (lo is None or key >= lo) and \
                            (hi is None or key < hi):
                        keys.add(key)
        for key in sorted(keys):
            values = self._get(store, key)
            if values is not None:
                yield key, values

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def _do_commit(self, txn: Transaction) -> None:
        if txn.engine_state.get("undo"):
            self._wal.append(WALEntry(walmod.OP_COMMIT, txn.txn_id))

    def _do_flush_commits(self) -> None:
        with self.tracer.span("wal.fsync",
                              pending=self._wal.pending_bytes()):
            self._wal.flush()
        # MemTable flushes happen at durable points, between
        # transactions, so an SSTable never contains dirty data.
        for name, store in self._tables.items():
            if store.memtable.size_bytes >= \
                    self.config.memtable_threshold_bytes:
                self._flush_memtable(name, store)

    def _do_abort(self, txn: Transaction) -> None:
        self._wal.append(WALEntry(walmod.OP_ABORT, txn.txn_id))
        self._undo_txn(txn)

    def _undo_txn(self, txn: Transaction) -> None:
        """Remove the transaction's MemTable entries and reverse its
        secondary index effects, newest first."""
        for record in reversed(txn.engine_state.get("undo", [])):
            kind, table, key, entry = record[0], record[1], record[2], \
                record[3]
            store = self._table(table)
            with self.stats.category(Category.STORAGE):
                store.memtable.remove_entry(key, entry)
            with self.stats.category(Category.INDEX):
                if kind == "insert":
                    secondary_remove(store.schema, store.secondary, key,
                                     record[4])
                elif kind == "update":
                    __, __t, __k, __e, old_values, new_values = record
                    secondary_update(store.schema, store.secondary, key,
                                     new_values, old_values)
                else:  # delete
                    secondary_add(store.schema, store.secondary, key,
                                  record[4])

    def checkpoint(self) -> None:
        """The Log engine's durable-point equivalent of a checkpoint:
        flush every MemTable to an SSTable (which truncates the WAL).
        Recovery latency afterwards depends only on transactions since
        this flush (Section 5.4)."""
        self.flush_commits()
        with self.tracer.span("checkpoint.memtable_flush",
                              tables=len(self._tables)):
            for name, store in self._tables.items():
                self._flush_memtable(name, store)

    # ------------------------------------------------------------------
    # Flush & compaction
    # ------------------------------------------------------------------

    def _flush_memtable(self, name: str, store: _LogTable) -> None:
        """Flush the MemTable to a level-0 SSTable and truncate the WAL
        (its contents are now durably in the run)."""
        if not len(store.memtable):
            return
        self.faults.fire("memtable.flush.before")
        with self.stats.category(Category.STORAGE), \
                self.tracer.span("memtable.flush", table=name,
                                 entries=len(store.memtable),
                                 bytes=store.memtable.size_bytes):
            rows = [(key, [(entry.kind, entry.data) for entry in chain])
                    for key, chain in store.memtable.chains()]
            run = SSTable.write(
                self.filesystem,
                f"sstable/{name}/L0-{next(store.sstable_ids)}",
                rows, bloom_bits_per_key=self.config.bloom_bits_per_key,
                bloom_hashes=self.config.bloom_hashes,
                index_factory=self._make_sstable_index,
                allocator=self.allocator, memory=self.memory)
            if not store.levels:
                store.levels.append([])
            store.levels[0].append(run)
            self.faults.fire("memtable.flush.after_write")
            store.memtable.destroy()
            store.memtable = self._make_memtable()
        with self.stats.category(Category.RECOVERY):
            if all(not len(t.memtable) for t in self._tables.values()):
                self._wal.truncate()
        self._maybe_compact(name, store)

    def _maybe_compact(self, name: str, store: _LogTable) -> None:
        """Leveled compaction: when a level holds too many runs, merge
        them into a single run one level down."""
        level = 0
        while level < len(store.levels):
            runs = store.levels[level]
            if len(runs) <= self.config.lsm_max_runs_per_level:
                level += 1
                continue
            with self.stats.category(Category.STORAGE), \
                    self.tracer.span("compaction.merge", table=name,
                                     level=level, runs=len(runs)):
                self.faults.fire("compaction.merge.before")
                merged = self._merge_runs(name, store, level, runs)
                if level + 1 >= len(store.levels):
                    store.levels.append([])
                store.levels[level + 1].append(merged)
                for run in runs:
                    run.delete_file()
                store.levels[level] = []
                self.stats.bump("lsm.compactions")
                from .base import logger
                logger.info("log: compacted %d runs of %s level %d",
                            len(runs), name, level)
            level += 1

    def _merge_runs(self, name: str, store: _LogTable, level: int,
                    runs: List[SSTable]) -> SSTable:
        """Merge entries per key across runs (oldest run first), drop
        superseded history, and write the new run."""
        merged_chains: Dict[Any, List] = {}
        for run in runs:  # oldest first
            for key, chain in run.rows():
                merged_chains.setdefault(key, []).append(chain)
        is_bottom = level + 1 >= len(store.levels) or \
            not any(store.levels[level + 1:])
        rows = []
        for key in sorted(merged_chains):
            chain = merge_entry_chains(merged_chains[key])
            if is_bottom and chain and chain[-1][0] == ENTRY_TOMBSTONE:
                continue  # purged tuples drop out at the bottom level
            if chain:
                rows.append((key, chain))
        return SSTable.write(
            self.filesystem,
            f"sstable/{name}/L{level + 1}-{next(store.sstable_ids)}",
            rows, bloom_bits_per_key=self.config.bloom_bits_per_key,
            bloom_hashes=self.config.bloom_hashes,
            index_factory=self._make_sstable_index,
            allocator=self.allocator, memory=self.memory)

    # ------------------------------------------------------------------
    # Restart events
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        """MemTable and all in-memory indexes are gone; SSTable files
        survive but need their indexes rebuilt."""
        for store in self._tables.values():
            store.memtable = self._make_memtable()
            store.secondary = {name: self._make_secondary_index()
                               for name in store.schema.secondary_indexes}
        self._pending_durable.clear()
        self._commits_since_flush = 0

    def recover(self) -> float:
        """Rebuild the MemTable from the WAL (committed transactions
        only), reopen SSTables, reconstruct secondary indexes."""
        start_ns = self.clock.now_ns
        self.faults.fire("recovery.begin")
        with self.stats.category(Category.RECOVERY), \
                self.tracer.span("recovery.total", engine=self.name):
            with self.tracer.span("recovery.sstable_open"):
                for store in self._tables.values():
                    for level in store.levels:
                        for run in level:
                            run.open()
            with self.tracer.span("recovery.wal_replay") as span:
                committed = self._wal.committed_txn_ids()
                replayed = 0
                for entry in self._wal.replay():
                    if entry.op in (walmod.OP_COMMIT, walmod.OP_ABORT):
                        continue
                    if entry.txn_id not in committed:
                        continue
                    self._replay_entry(entry)
                    replayed += 1
                if span:
                    span.tag(entries=replayed,
                             committed=len(committed))
            self.faults.fire("recovery.wal_replayed")
            with self.tracer.span("recovery.index_rebuild"):
                self._rebuild_secondaries()
        self.faults.fire("recovery.end")
        return self.clock.elapsed_since(start_ns) / 1e9

    def _replay_entry(self, entry: WALEntry) -> None:
        store = self._tables[self._table_name(entry.table_id)]
        if entry.op == walmod.OP_INSERT:
            store.memtable.add(entry.key, ENTRY_PUT, entry.after)
        elif entry.op == walmod.OP_UPDATE:
            store.memtable.add(entry.key, ENTRY_DELTA, entry.after)
        else:
            store.memtable.add(entry.key, ENTRY_TOMBSTONE, b"")

    def _rebuild_secondaries(self) -> None:
        for name, store in self._tables.items():
            if not store.schema.secondary_indexes:
                continue
            for key, values in self.scan(None, name):
                secondary_add(store.schema, store.secondary, key, values)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def storage_breakdown(self) -> Dict[str, int]:
        by_tag = self.allocator.bytes_by_tag()
        sstable_bytes = self.filesystem.total_bytes("sstable/")
        return {
            "table": by_tag.get("table", 0) + sstable_bytes,
            "index": by_tag.get("index", 0),
            "log": self._wal.size_bytes,
            "checkpoint": 0,
            "other": by_tag.get("other", 0),
        }
