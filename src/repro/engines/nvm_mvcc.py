"""SOFORT-style multi-version engine on NVM (Section 6 related work).

SOFORT [51] is "designed to not perform any logging and uses MVCC":
updates never modify tuples in place and never copy before-images into
a log — they append a new *version*. This extension engine explores
that design point on the testbed's NVM substrate:

* every version is a persistent slot carrying a prologue of
  ``(begin_ts, end_ts, prev_ptr)`` after the tuple bytes;
* an update creates the new version, durably closes the old one
  (a single 8-byte ``end_ts`` write), and links them;
* **commit is one atomic durable 8-byte write** — advancing the
  persistent commit watermark. No redo information exists anywhere;
* a minimal in-flight registry (the non-volatile pointer list reused
  from the NVM-InP engine) lets recovery find the versions of
  transactions that were active at the crash and unlink them — undo
  metadata, not a log: it holds pointers only, never images;
* superseded versions are reclaimed at commit (the serial-execution
  testbed has no snapshot readers keeping them alive).

Compared with NVM-InP, updates trade the in-place field write for a
full version copy — more bytes written per update, but no before-image
logging and a natural path to snapshot reads.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..config import EngineConfig
from ..core.schema import Schema
from ..core.tuple_codec import encode_slotted
from ..core.transaction import Transaction
from ..errors import DuplicateKeyError, TupleNotFoundError
from ..index.cost import NVMIndexCostModel
from ..index.nv_btree import NVBTree
from ..nvm.platform import Platform
from ..sim.stats import Category
from .base import StorageEngine, register_engine
from .nvm_wal import NVMWal, NVMWalRecord
from .secondary import secondary_add, secondary_remove, secondary_update
from .slotted import FixedSlotPool, VarlenPool, read_slotted_tuple

_U64 = struct.Struct("<Q")

#: Version prologue appended after the tuple bytes.
PROLOGUE_SIZE = 24  # begin_ts (8) + end_ts (8) + prev ptr (8)
END_INFINITY = 2 ** 64 - 1
NO_PREV = 0


class _MVCCTable:
    """Per-table storage for the MVCC engine."""

    __slots__ = ("schema", "pool", "varlen", "index", "secondary",
                 "varlen_of")

    def __init__(self, schema: Schema, engine: "NVMMVCCEngine") -> None:
        self.schema = schema
        self.pool = FixedSlotPool(schema, engine.allocator, engine.memory,
                                  persistent=True,
                                  extra_bytes=PROLOGUE_SIZE)
        self.varlen = VarlenPool(engine.allocator, engine.memory,
                                 persistent=True)
        self.index = engine._make_index()
        self.secondary: Dict[str, NVBTree] = {
            name: engine._make_index()
            for name in schema.secondary_indexes
        }
        self.varlen_of: Dict[int, List[int]] = {}


@register_engine
class NVMMVCCEngine(StorageEngine):
    """Logging-free multi-version storage on NVM (SOFORT-style)."""

    name = "nvm-mvcc"
    is_nvm_aware = True

    def __init__(self, platform: Platform, config: EngineConfig) -> None:
        super().__init__(platform, config)
        self._tables: Dict[str, _MVCCTable] = {}
        #: In-flight version registry (pointers only, truncated at
        #: commit) — what recovery walks to unlink uncommitted versions.
        self._inflight = NVMWal(self.allocator, self.memory, tag="log",
                                faults=self.faults)
        #: The commit watermark: one durable 8-byte NVM word.
        self._watermark = self.allocator.malloc(8, tag="other")
        self.allocator.persist(self._watermark)
        self.memory.atomic_durable_store_u64(self._watermark.addr, 0)

    def _make_index(self) -> NVBTree:
        cost = NVMIndexCostModel(self.allocator, self.memory, tag="index",
                                 persistent=True)
        return NVBTree(node_size=self.config.btree_node_size,
                       cost_model=cost)

    def _create_table_storage(self, schema: Schema) -> None:
        self._tables[schema.table] = _MVCCTable(schema, self)

    def _table(self, name: str) -> _MVCCTable:
        self._schema(name)
        return self._tables[name]

    # ------------------------------------------------------------------
    # Version helpers
    # ------------------------------------------------------------------

    def _prologue_addr(self, store: _MVCCTable, addr: int) -> int:
        return addr + store.schema.fixed_slot_size

    def _write_version(self, store: _MVCCTable, values: Dict[str, Any],
                       begin_ts: int, prev: int) -> int:
        """Materialize one durable version; returns its address."""
        addr = store.pool.allocate_slot()
        slot, pointers = encode_slotted(store.schema, values,
                                        store.varlen.write)
        prologue = _U64.pack(begin_ts) + _U64.pack(END_INFINITY) \
            + _U64.pack(prev)
        store.pool.write_slot(addr, slot + prologue)
        store.varlen_of[addr] = pointers
        # One batched sync: slot (incl. prologue) + varlen fields,
        # each line flushed once under a single fence.
        store.varlen.sync_many(
            pointers,
            extra_ranges=((addr, store.pool.slot_size),))
        store.pool.mark_persisted(addr)
        return addr

    def _read_version(self, store: _MVCCTable,
                      addr: int) -> Dict[str, Any]:
        return read_slotted_tuple(store.schema, store.pool,
                                  store.varlen, addr)

    def _set_end(self, store: _MVCCTable, addr: int, end_ts: int) -> None:
        """Durably close (or reopen) a version — one 8-byte write."""
        offset = self._prologue_addr(store, addr) + 8
        self.memory.atomic_durable_store_u64(offset, end_ts)

    def _prev_of(self, store: _MVCCTable, addr: int) -> int:
        return self.memory.load_u64(self._prologue_addr(store, addr) + 16)

    def _free_version(self, store: _MVCCTable, addr: int) -> None:
        for pointer in store.varlen_of.pop(addr, []):
            if store.varlen.contains(pointer):
                store.varlen.free(pointer)
        if store.pool.owns(addr):
            store.pool.free_slot(addr)

    # ------------------------------------------------------------------
    # Primitive operations
    # ------------------------------------------------------------------

    def insert(self, txn: Transaction, table: str,
               values: Dict[str, Any]) -> None:
        txn.require_active()
        store = self._table(table)
        key = store.schema.key_of(values)
        with self.stats.category(Category.INDEX):
            if store.index.get(key) is not None:
                raise DuplicateKeyError(f"{table}: key {key!r} exists")
        with self.stats.category(Category.STORAGE):
            addr = self._write_version(store, values, txn.timestamp,
                                       NO_PREV)
        with self.stats.category(Category.RECOVERY):
            self._inflight.append(txn.txn_id, NVMWalRecord(
                "insert", table, key, tuple_ptr=addr))
        with self.stats.category(Category.INDEX):
            store.index.put(key, addr)
            secondary_add(store.schema, store.secondary, key, values)
        txn.engine_state.setdefault("undo", []).append(
            ("insert", table, key, addr))

    def update(self, txn: Transaction, table: str, key: Any,
               changes: Dict[str, Any]) -> None:
        txn.require_active()
        store = self._table(table)
        store.schema.validate_partial(changes)
        with self.stats.category(Category.INDEX):
            current = store.index.get(key)
        if current is None:
            raise TupleNotFoundError(f"{table}: no tuple with key {key!r}")
        with self.stats.category(Category.STORAGE):
            old_values = self._read_version(store, current)
            new_values = dict(old_values)
            new_values.update(changes)
            fresh = self._write_version(store, new_values,
                                        txn.timestamp, prev=current)
            self._set_end(store, current, txn.timestamp)
        with self.stats.category(Category.RECOVERY):
            self._inflight.append(txn.txn_id, NVMWalRecord(
                "update", table, key, tuple_ptr=fresh,
                extra=current))
        with self.stats.category(Category.INDEX):
            store.index.put(key, fresh)
            secondary_update(store.schema, store.secondary, key,
                             old_values, new_values)
        txn.engine_state.setdefault("undo", []).append(
            ("update", table, key, fresh, current, old_values,
             new_values))

    def delete(self, txn: Transaction, table: str, key: Any) -> None:
        txn.require_active()
        store = self._table(table)
        with self.stats.category(Category.INDEX):
            current = store.index.get(key)
        if current is None:
            raise TupleNotFoundError(f"{table}: no tuple with key {key!r}")
        old_values = self._read_version(store, current)
        with self.stats.category(Category.STORAGE):
            self._set_end(store, current, txn.timestamp)
        with self.stats.category(Category.RECOVERY):
            self._inflight.append(txn.txn_id, NVMWalRecord(
                "delete", table, key, tuple_ptr=current))
        with self.stats.category(Category.INDEX):
            store.index.delete(key)
            secondary_remove(store.schema, store.secondary, key,
                             old_values)
        txn.engine_state.setdefault("undo", []).append(
            ("delete", table, key, current, old_values))

    def select(self, txn: Transaction, table: str,
               key: Any) -> Optional[Dict[str, Any]]:
        store = self._table(table)
        with self.stats.category(Category.INDEX):
            addr = store.index.get(key)
        if addr is None:
            return None
        with self.stats.category(Category.STORAGE):
            return self._read_version(store, addr)

    def select_secondary(self, txn: Transaction, table: str,
                         index_name: str, key: Any) -> List[Any]:
        store = self._table(table)
        with self.stats.category(Category.INDEX):
            members = store.secondary[index_name].get(key)
        return sorted(members) if members else []

    def scan(self, txn: Transaction, table: str, lo: Any = None,
             hi: Any = None) -> Iterator[Tuple[Any, Dict[str, Any]]]:
        store = self._table(table)
        for key, addr in list(store.index.items(lo=lo, hi=hi)):
            with self.stats.category(Category.STORAGE):
                values = self._read_version(store, addr)
            yield key, values

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def _do_commit(self, txn: Transaction) -> None:
        if txn.engine_state.get("undo"):
            # THE commit: one atomic durable watermark write.
            self.memory.atomic_durable_store_u64(
                self._watermark.addr, txn.timestamp)
        # Drop the in-flight registry before reclaiming: until the
        # registry is gone recovery may still undo this transaction and
        # needs the superseded versions intact.
        self._inflight.truncate_txn(txn.txn_id)
        # Reclaim versions this transaction superseded or deleted (no
        # snapshot readers exist in the serial testbed).
        for record in txn.engine_state.get("undo", []):
            kind = record[0]
            store = self._table(record[1])
            if kind == "update":
                self._free_version(store, record[4])  # old version
            elif kind == "delete":
                self._free_version(store, record[3])

    def _do_flush_commits(self) -> None:
        """Commits are durable the moment the watermark advances."""

    def _do_abort(self, txn: Transaction) -> None:
        for record in reversed(txn.engine_state.get("undo", [])):
            self._undo_one(record)
        self._inflight.truncate_txn(txn.txn_id)

    def _undo_one(self, record: tuple) -> None:
        kind = record[0]
        store = self._table(record[1])
        key = record[2]
        if kind == "insert":
            addr = record[3]
            values = self._read_version(store, addr)
            store.index.delete(key)
            secondary_remove(store.schema, store.secondary, key, values)
            self._free_version(store, addr)
        elif kind == "update":
            __, __t, __k, fresh, current, old_values, new_values = record
            self._set_end(store, current, END_INFINITY)
            store.index.put(key, current)
            secondary_update(store.schema, store.secondary, key,
                             new_values, old_values)
            self._free_version(store, fresh)
        else:  # delete
            __, __t, __k, current, old_values = record
            self._set_end(store, current, END_INFINITY)
            store.index.put(key, current)
            secondary_add(store.schema, store.secondary, key, old_values)

    # ------------------------------------------------------------------
    # Restart events
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        self._pending_durable.clear()
        self._commits_since_flush = 0

    def recover(self) -> float:
        """Unlink the versions of transactions in flight at the crash;
        everything committed is already durable (the watermark)."""
        start_ns = self.clock.now_ns
        self.faults.fire("recovery.begin")
        with self.stats.category(Category.RECOVERY):
            self.memory.load_u64(self._watermark.addr)
            for txn_id in self._inflight.active_txn_ids():
                for record in reversed(
                        self._inflight.entries_for(txn_id)):
                    self._undo_wal_record(record)
                self._inflight.truncate_txn(txn_id)
            for store in self._tables.values():
                store.pool.recover_unpersisted()
                store.varlen.prune_dead()
        self.faults.fire("recovery.end")
        return self.clock.elapsed_since(start_ns) / 1e9

    def _undo_wal_record(self, record: NVMWalRecord) -> None:
        store = self._table(record.table)
        key = record.key
        if record.op == "insert":
            addr = record.tuple_ptr
            if store.index.get(key) != addr:
                return
            values = self._read_version(store, addr)
            store.index.delete(key)
            secondary_remove(store.schema, store.secondary, key, values)
            self._free_version(store, addr)
        elif record.op == "update":
            fresh = record.tuple_ptr
            current = record.extra
            if store.index.get(key) != fresh:
                return
            new_values = self._read_version(store, fresh)
            self._set_end(store, current, END_INFINITY)
            old_values = self._read_version(store, current)
            store.index.put(key, current)
            secondary_update(store.schema, store.secondary, key,
                             new_values, old_values)
            self._free_version(store, fresh)
        else:  # delete
            current = record.tuple_ptr
            if store.index.get(key) is not None:
                return
            self._set_end(store, current, END_INFINITY)
            old_values = self._read_version(store, current)
            store.index.put(key, current)
            secondary_add(store.schema, store.secondary, key, old_values)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def watermark(self) -> int:
        """The durable commit watermark (last committed timestamp)."""
        return self.memory.load_u64(self._watermark.addr)

    def storage_breakdown(self) -> Dict[str, int]:
        by_tag = self.allocator.bytes_by_tag()
        return {
            "table": by_tag.get("table", 0),
            "index": by_tag.get("index", 0),
            "log": by_tag.get("log", 0),  # in-flight pointer registry
            "checkpoint": 0,
            "other": by_tag.get("other", 0),
        }
