"""The storage engine interface and registry.

Every engine implements the primitive database operations of Table 2
(insert / update / delete / select) plus the transaction lifecycle and
a recovery entry point. The testbed coordinator drives engines only
through this interface, which is what lets the paper compare six
architectures "on a single platform".
"""

from __future__ import annotations

import abc
import itertools
import logging
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type

from ..config import EngineConfig
from ..core.schema import Schema
from ..core.transaction import Transaction, TransactionStatus
from ..errors import ConfigError, StorageEngineError
from ..nvm.platform import Platform
from ..sim.stats import Category

logger = logging.getLogger("repro.engines")

#: registry: engine name -> class
_REGISTRY: Dict[str, Type["StorageEngine"]] = {}


def register_engine(cls: Type["StorageEngine"]) -> Type["StorageEngine"]:
    """Class decorator adding an engine to the registry."""
    _REGISTRY[cls.name] = cls
    return cls


def create_engine(name: str, platform: Platform,
                  config: Optional[EngineConfig] = None) -> "StorageEngine":
    """Instantiate a registered engine by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown engine {name!r}; expected one of "
            f"{sorted(_REGISTRY)}") from None
    return cls(platform, config or EngineConfig())


def engine_names() -> List[str]:
    """All registered engine names, traditional engines first."""
    order = ["inp", "cow", "log", "nvm-inp", "nvm-cow", "nvm-log"]
    return [name for name in order if name in _REGISTRY] + sorted(
        name for name in _REGISTRY if name not in order)


class ENGINE_NAMES:
    """Canonical engine name constants."""

    INP = "inp"
    COW = "cow"
    LOG = "log"
    NVM_INP = "nvm-inp"
    NVM_COW = "nvm-cow"
    NVM_LOG = "nvm-log"

    ALL = (INP, COW, LOG, NVM_INP, NVM_COW, NVM_LOG)
    TRADITIONAL = (INP, COW, LOG)
    NVM_AWARE = (NVM_INP, NVM_COW, NVM_LOG)

    #: traditional engine -> its NVM-aware counterpart
    COUNTERPART = {INP: NVM_INP, COW: NVM_COW, LOG: NVM_LOG}


class StorageEngine(abc.ABC):
    """Abstract storage engine over an emulated platform."""

    name: str = "abstract"
    is_nvm_aware: bool = False
    #: True if the engine needs no recovery procedure at all (CoW pair).
    instant_recovery: bool = False

    def __init__(self, platform: Platform, config: EngineConfig) -> None:
        self.platform = platform
        self.config = config
        self.memory = platform.memory
        self.allocator = platform.allocator
        self.filesystem = platform.filesystem
        self.stats = platform.stats
        self.clock = platform.clock
        # The platform's tracer is activated/deactivated in place, so
        # caching the reference is safe and keeps hot paths cheap.
        self.tracer = platform.tracer
        # Fault injector — same in-place arm/disarm contract.
        self.faults = platform.faults
        self.schemas: Dict[str, Schema] = {}
        self._txn_ids = itertools.count(1)
        self._timestamps = itertools.count(1)
        self._commits_since_flush = 0
        #: Modifying commits between checkpoints; initialized from the
        #: config but adjustable at runtime (e.g. after bulk loading).
        self.checkpoint_interval_txns = config.checkpoint_interval_txns
        self._pending_durable: List[Transaction] = []
        self._active_txns: Dict[int, Transaction] = {}
        self.committed_txns = 0
        self.aborted_txns = 0

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------

    def create_table(self, schema: Schema) -> None:
        """Register ``schema`` and build its storage and indexes."""
        if schema.table in self.schemas:
            raise StorageEngineError(f"table {schema.table} exists")
        self.schemas[schema.table] = schema
        self._create_table_storage(schema)

    @abc.abstractmethod
    def _create_table_storage(self, schema: Schema) -> None:
        """Engine-specific storage + index creation."""

    def _schema(self, table: str) -> Schema:
        try:
            return self.schemas[table]
        except KeyError:
            raise StorageEngineError(f"no such table {table!r}") from None

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction (timestamp-ordered serial execution)."""
        txn = Transaction(next(self._txn_ids), next(self._timestamps))
        txn.begin_ns = self.clock.now_ns
        self._active_txns[txn.txn_id] = txn
        ordering = self.platform.ordering
        if ordering is not None:
            ordering.txn_begin(txn.txn_id)
        self._on_begin(txn)
        return txn

    def _on_begin(self, txn: Transaction) -> None:
        """Hook for engine-specific begin work."""

    def commit(self, txn: Transaction) -> None:
        """Logically commit; durability may await :meth:`flush_commits`
        (group commit). Engines that persist immediately mark the
        transaction durable here."""
        txn.require_active()
        with self.stats.category(Category.RECOVERY):
            self._do_commit(txn)
        txn.mark_committed()
        txn.commit_ns = self.clock.now_ns
        self._active_txns.pop(txn.txn_id, None)
        self.committed_txns += 1
        self._pending_durable.append(txn)
        ordering = self.platform.ordering
        if ordering is not None:
            # Immediately-durable engines flag the txn in _do_commit;
            # group-commit engines defer the ordering check to the next
            # durable point (flush_commits).
            ordering.txn_commit(
                txn.txn_id,
                durable=bool(txn.engine_state.get("durable")))
        self._commits_since_flush += 1
        if self._commits_since_flush >= self.config.group_commit_size:
            self.flush_commits()

    def abort(self, txn: Transaction) -> None:
        """Abort and roll back the transaction's effects."""
        txn.require_active()
        with self.stats.category(Category.RECOVERY):
            self._do_abort(txn)
        txn.mark_aborted()
        self._active_txns.pop(txn.txn_id, None)
        self.aborted_txns += 1
        ordering = self.platform.ordering
        if ordering is not None:
            ordering.txn_abort(txn.txn_id)

    def flush_commits(self) -> List[int]:
        """Reach a durable point: every logically committed transaction
        becomes durable (group commit boundary). Returns their ids."""
        with self.stats.category(Category.RECOVERY):
            self._do_flush_commits()
        durable_ids = []
        for txn in self._pending_durable:
            if txn.status is TransactionStatus.COMMITTED:
                txn.mark_durable()
            durable_ids.append(txn.txn_id)
        self._pending_durable.clear()
        self._commits_since_flush = 0
        ordering = self.platform.ordering
        if ordering is not None and durable_ids:
            ordering.durable_point(durable_ids)
        return durable_ids

    @abc.abstractmethod
    def _do_commit(self, txn: Transaction) -> None: ...

    @abc.abstractmethod
    def _do_abort(self, txn: Transaction) -> None: ...

    def _do_flush_commits(self) -> None:
        """Engine-specific durable point (fsync / master-record flip).
        Engines with immediate persistence leave this a no-op."""

    # ------------------------------------------------------------------
    # Primitive database operations (Table 2)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def insert(self, txn: Transaction, table: str,
               values: Dict[str, Any]) -> None: ...

    @abc.abstractmethod
    def update(self, txn: Transaction, table: str, key: Any,
               changes: Dict[str, Any]) -> None: ...

    @abc.abstractmethod
    def delete(self, txn: Transaction, table: str, key: Any) -> None: ...

    @abc.abstractmethod
    def select(self, txn: Transaction, table: str,
               key: Any) -> Optional[Dict[str, Any]]: ...

    @abc.abstractmethod
    def select_secondary(self, txn: Transaction, table: str,
                         index_name: str, key: Any) -> List[Any]:
        """Primary keys of tuples whose secondary key equals ``key``."""

    @abc.abstractmethod
    def scan(self, txn: Transaction, table: str, lo: Any = None,
             hi: Any = None) -> Iterator[Tuple[Any, Dict[str, Any]]]:
        """(key, values) pairs with ``lo <= key < hi`` in key order."""

    # ------------------------------------------------------------------
    # Restart events
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        """Reset engine state that lived in volatile structures. Called
        by the testbed right after the platform crash, before
        :meth:`recover`."""

    @abc.abstractmethod
    def recover(self) -> float:
        """Restore the database to a consistent state after a restart;
        returns the simulated seconds the recovery took."""

    def checkpoint(self) -> None:
        """Take a checkpoint (engines without checkpoints: no-op)."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def storage_breakdown(self) -> Dict[str, int]:
        """Live NVM bytes by component: table / index / log /
        checkpoint / other (Fig. 14)."""

    def storage_footprint(self) -> int:
        return sum(self.storage_breakdown().values())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(tables={sorted(self.schemas)})"
