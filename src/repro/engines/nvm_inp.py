"""NVM-aware in-place updates engine (NVM-InP, Section 4.1).

Differences from the traditional InP engine:

* **No tuple copies in the WAL.** When a transaction inserts a tuple,
  the engine syncs the tuple itself to NVM and records only a
  *non-volatile pointer* in the WAL (both the pointer and the tuple are
  on NVM, so the pointer stays valid across restarts). Updates log the
  before-images of just the changed inline fields plus old/new varlen
  pointers.
* **Non-volatile linked-list WAL** via the allocator interface, with
  per-transaction truncation at commit.
* **Non-volatile B+tree indexes** that are consistent immediately after
  restart — no rebuild during recovery.
* **Slot durability states** (unallocated / allocated / persisted) in
  each slot's header so that storage of transactions that never reached
  the persisted state is reclaimed after a restart, preventing
  non-volatile memory leaks.
* **Undo-only recovery** whose latency depends only on the number of
  transactions in flight at the crash, not on history (Fig. 12).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List

from ..config import EngineConfig
from ..core.schema import FIELD_SLOT_SIZE, SLOT_HEADER_SIZE
from ..core.tuple_codec import STATE_PERSISTED, decode_fields, encode_fields
from ..core.transaction import Transaction
from ..errors import DuplicateKeyError, TupleNotFoundError
from ..index.cost import NVMIndexCostModel
from ..index.nv_btree import NVBTree
from ..nvm.platform import Platform
from ..sim.stats import Category
from .base import register_engine
from .inp import InPEngine, _Table
from .nvm_wal import NVMWal, NVMWalRecord

_U64 = struct.Struct("<Q")


@register_engine
class NVMInPEngine(InPEngine):
    """In-place updates exploiting NVM's byte-addressable persistence."""

    name = "nvm-inp"
    is_nvm_aware = True
    pools_persistent = True

    def __init__(self, platform: Platform, config: EngineConfig) -> None:
        super().__init__(platform, config)
        self._nvm_wal = NVMWal(self.allocator, self.memory, tag="log",
                               faults=self.faults)

    def _make_index(self) -> NVBTree:
        cost = NVMIndexCostModel(self.allocator, self.memory, tag="index",
                                 persistent=True)
        return NVBTree(node_size=self.config.btree_node_size,
                       cost_model=cost)

    # ------------------------------------------------------------------
    # Primitive operations (Table 2, NVM-InP column)
    # ------------------------------------------------------------------

    def insert(self, txn: Transaction, table: str,
               values: Dict[str, Any]) -> None:
        txn.require_active()
        store = self._table(table)
        key = store.schema.key_of(values)
        with self.stats.category(Category.INDEX):
            if key in store.slots:
                raise DuplicateKeyError(f"{table}: key {key!r} exists")
        with self.stats.category(Category.STORAGE):
            addr = store.pool.allocate_slot()
            slot, pointers = self._encode_slot(store, values)
            store.pool.write_slot(addr, slot)
            store.varlen_of[addr] = pointers
        # Record the tuple *pointer* in the WAL and sync the entry
        # before marking the slot persisted; the entry (not the tuple
        # bytes) is what undo needs, so the tuple itself can be synced
        # once, with its state byte already set, right after.
        with self.stats.category(Category.RECOVERY):
            self._nvm_wal.append(txn.txn_id, NVMWalRecord(
                "insert", table, key, tuple_ptr=addr,
                after_varlen=tuple(zip(self._varlen_columns(store),
                                       pointers))))
        with self.stats.category(Category.STORAGE):
            store.pool.set_state(addr, STATE_PERSISTED, durable=False)
            # One batched sync covers the state byte, every tuple
            # line, and the new varlen slots under a single fence.
            store.varlen.sync_many(
                pointers,
                extra_ranges=((addr, store.pool.slot_size),))
            store.pool.mark_persisted(addr)
        with self.stats.category(Category.INDEX):
            store.primary.put(key, addr)
            self._index_add(store, key, values)
        store.slots[key] = addr
        txn.engine_state.setdefault("undo", []).append(
            ("insert", table, key, addr))

    def update(self, txn: Transaction, table: str, key: Any,
               changes: Dict[str, Any]) -> None:
        txn.require_active()
        store = self._table(table)
        store.schema.validate_partial(changes)
        with self.stats.category(Category.INDEX):
            addr = store.primary.get(key)
        if addr is None:
            raise TupleNotFoundError(f"{table}: no tuple with key {key!r}")
        with self.stats.category(Category.STORAGE):
            old_values = self._read_tuple(store, addr)
        before = {name: old_values[name] for name in changes}
        inline_before = {name: value for name, value in before.items()
                         if store.schema.column(name).inline}
        # WAL: changed inline before-images + old varlen pointers
        # (Table 3: log = F + p), synced before the in-place write.
        with self.stats.category(Category.RECOVERY):
            old_ptrs = self._varlen_ptrs_of(store, addr, changes)
            self._nvm_wal.append(txn.txn_id, NVMWalRecord(
                "update", table, key, tuple_ptr=addr,
                before_fields=encode_fields(store.schema, inline_before),
                before_varlen=tuple(old_ptrs.items())))
        with self.stats.category(Category.STORAGE):
            created: Dict[str, int] = {}
            replaced = self._write_fields(store, addr, changes,
                                          created=created)
            self._sync_fields(store, addr, changes, created)
        with self.stats.category(Category.INDEX):
            self._index_update(store, key, before, changes, old_values)
        txn.engine_state.setdefault("undo", []).append(
            ("update", table, key, addr, before, replaced))

    def delete(self, txn: Transaction, table: str, key: Any) -> None:
        txn.require_active()
        store = self._table(table)
        with self.stats.category(Category.INDEX):
            addr = store.primary.get(key)
        if addr is None:
            raise TupleNotFoundError(f"{table}: no tuple with key {key!r}")
        old_values = self._read_tuple(store, addr)
        # WAL: just the tuple pointer (Table 3: log = p).
        with self.stats.category(Category.RECOVERY):
            self._nvm_wal.append(txn.txn_id, NVMWalRecord(
                "delete", table, key, tuple_ptr=addr))
        with self.stats.category(Category.INDEX):
            store.primary.delete(key)
            self._index_remove(store, key, old_values)
        del store.slots[key]
        # Space is reclaimed at the end of the transaction (Table 2).
        txn.engine_state.setdefault("undo", []).append(
            ("delete", table, key, addr, old_values))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _encode_slot(self, store: _Table, values: Dict[str, Any]):
        from ..core.tuple_codec import encode_slotted
        return encode_slotted(store.schema, values, store.varlen.write)

    def _varlen_columns(self, store: _Table) -> List[str]:
        return [column.name for column in store.schema.columns
                if not column.inline]

    def _varlen_ptrs_of(self, store: _Table, addr: int,
                        changes: Dict[str, Any]) -> Dict[str, int]:
        """Current varlen pointers of the changed non-inline columns."""
        pointers: Dict[str, int] = {}
        for position, column in enumerate(store.schema.columns):
            if column.name in changes and not column.inline:
                offset = addr + SLOT_HEADER_SIZE \
                    + position * FIELD_SLOT_SIZE
                pointers[column.name] = _U64.unpack(
                    self.memory.load(offset, FIELD_SLOT_SIZE))[0]
        return pointers

    def _field_ranges(self, store: _Table, addr: int,
                      names) -> List[tuple]:
        """``(addr, size)`` ranges of the named fields' slot positions."""
        return [(addr + SLOT_HEADER_SIZE + position * FIELD_SLOT_SIZE,
                 FIELD_SLOT_SIZE)
                for position, column in enumerate(store.schema.columns)
                if column.name in names]

    def _sync_fields(self, store: _Table, addr: int,
                     changes: Dict[str, Any],
                     created: Dict[str, int]) -> None:
        """Sync exactly the changed field positions (and new varlen
        slots) — the 'sync tuple changes with NVM' step of Table 2.
        Batched: adjacent field positions share cache lines, so
        per-field syncs would re-flush shared lines and pay one fence
        per field."""
        store.varlen.sync_many(
            [new_ptr for new_ptr in created.values()
             if store.varlen.contains(new_ptr)],
            extra_ranges=self._field_ranges(store, addr, changes))

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def _do_commit(self, txn: Transaction) -> None:
        # All changes were persisted as they happened. The truncation is
        # the commit point, so it must come *before* reclamation: until
        # the log is gone, undo may still run and needs the deleted
        # tuples and superseded varlen slots intact (a crash after the
        # truncation merely leaks the space it would have reclaimed).
        with self.tracer.span("wal.truncate", txn=txn.txn_id):
            self._nvm_wal.truncate_txn(txn.txn_id)
        for record in txn.engine_state.get("undo", []):
            if record[0] == "delete":
                __, table, __k, addr, __v = record
                self._release_tuple(self._table(table), addr)
            elif record[0] == "update":
                __, table, __k, __a, __b, replaced = record
                store = self._table(table)
                for old_ptr in replaced.values():
                    if store.varlen.contains(old_ptr):
                        store.varlen.free(old_ptr)
        txn.engine_state["durable"] = True

    def _do_flush_commits(self) -> None:
        """No group commit needed — commits are durable immediately."""

    def _do_abort(self, txn: Transaction) -> None:
        # Roll back in reverse order using the in-memory undo records
        # (equivalent to walking the txn's non-volatile WAL entries).
        for record in reversed(txn.engine_state.get("undo", [])):
            self._undo_one(record)
        self._nvm_wal.truncate_txn(txn.txn_id)

    def _undo_one(self, record: tuple) -> None:
        kind = record[0]
        store = self._table(record[1])
        if kind == "insert":
            __, __t, key, addr = record
            values = self._read_tuple(store, addr)
            with self.stats.category(Category.INDEX):
                store.primary.delete(key)
                self._index_remove(store, key, values)
            store.slots.pop(key, None)
            self._release_tuple(store, addr)
        elif kind == "update":
            __, __t, key, addr, before, replaced = record
            current = self._read_tuple(store, addr)
            with self.stats.category(Category.STORAGE):
                self._restore_fields(store, addr, before, replaced)
                self.memory.sync_ranges(
                    self._field_ranges(store, addr, before))
            with self.stats.category(Category.INDEX):
                self._index_update(store, key, {}, before, current)
        else:  # delete
            __, __t, key, addr, old_values = record
            with self.stats.category(Category.INDEX):
                store.primary.put(key, addr)
                self._index_add(store, key, old_values)
            store.slots[key] = addr

    # ------------------------------------------------------------------
    # Restart events
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """NVM-InP takes no checkpoints — the database *is* durable."""

    def on_crash(self) -> None:
        """Pools, indexes, and the NVM WAL all survive; only clear the
        group-commit bookkeeping."""
        self._pending_durable.clear()
        self._commits_since_flush = 0

    def recover(self) -> float:
        """Undo-only recovery (Section 4.1): committed effects are
        already durable; roll back the transactions whose WAL entries
        were never truncated."""
        start_ns = self.clock.now_ns
        self.faults.fire("recovery.begin")
        with self.stats.category(Category.RECOVERY), \
                self.tracer.span("recovery.total", engine=self.name):
            with self.tracer.span("recovery.wal_undo") as span:
                self._nvm_wal.head_ptr()  # locate the log on NVM
                undone = 0
                for txn_id in self._nvm_wal.active_txn_ids():
                    records = self._nvm_wal.entries_for(txn_id)
                    for record in reversed(records):
                        self._undo_wal_record(record)
                    self._nvm_wal.truncate_txn(txn_id)
                    undone += 1
                if span:
                    span.tag(txns=undone)
            self.faults.fire("recovery.wal_undone")
            with self.tracer.span("recovery.pool_reclaim"):
                for store in self._tables.values():
                    store.pool.recover_unpersisted()
                    store.varlen.prune_dead()
        from .base import logger
        logger.info("nvm-inp: undo-only recovery complete")
        self.faults.fire("recovery.end")
        return self.clock.elapsed_since(start_ns) / 1e9

    def _undo_wal_record(self, record: NVMWalRecord) -> None:
        store = self._table(record.table)
        if record.op == "insert":
            addr = record.tuple_ptr
            if store.slots.get(record.key) != addr:
                return
            values = self._read_tuple(store, addr)
            store.primary.delete(record.key)
            self._index_remove(store, record.key, values)
            del store.slots[record.key]
            self._release_tuple(store, addr)
        elif record.op == "update":
            addr = record.tuple_ptr
            before = decode_fields(store.schema, record.before_fields) \
                if record.before_fields else {}
            replaced = {}
            current = self._read_tuple(store, addr)
            # Restore old varlen pointers recorded in the WAL entry.
            for name, old_ptr in record.before_varlen:
                position = store.schema.column_names.index(name)
                offset = addr + SLOT_HEADER_SIZE \
                    + position * FIELD_SLOT_SIZE
                new_ptr = _U64.unpack(
                    self.memory.load(offset, FIELD_SLOT_SIZE))[0]
                self.memory.store(offset, _U64.pack(old_ptr))
                self.memory.sync(offset, FIELD_SLOT_SIZE)
                owned = store.varlen_of.setdefault(addr, [])
                if new_ptr in owned:
                    owned.remove(new_ptr)
                if store.varlen.contains(new_ptr):
                    store.varlen.free(new_ptr)
                owned.append(old_ptr)
            if before:
                self._restore_fields(store, addr, before, replaced)
                # The restored field bytes must be durable before
                # recover() truncates this txn's WAL entries — a crash
                # after truncation would otherwise leave the aborted
                # update's bytes in the tuple with no undo record left
                # to repair them (SDA002; mirrors the abort path).
                self.memory.sync_ranges(
                    self._field_ranges(store, addr, before))
                old_all = dict(current)
                old_all.update(before)
                self._index_update(store, record.key, {}, before, current)
        else:  # delete — point the indexes back at the original tuple
            addr = record.tuple_ptr
            if record.key in store.slots:
                return
            values = self._read_tuple(store, addr)
            store.primary.put(record.key, addr)
            self._index_add(store, record.key, values)
            store.slots[record.key] = addr

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def storage_breakdown(self) -> Dict[str, int]:
        by_tag = self.allocator.bytes_by_tag()
        return {
            "table": by_tag.get("table", 0),
            "index": by_tag.get("index", 0),
            "log": by_tag.get("log", 0),
            "checkpoint": 0,
            "other": by_tag.get("other", 0),
        }
