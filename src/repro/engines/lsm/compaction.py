"""Entry-chain merging for LSM compaction and tuple coalescing.

An entry chain for a key is a list of ``(kind, data)`` records, oldest
first, where kind is one of ``put`` / ``delta`` / ``tombstone``. Two
operations are defined:

* :func:`merge_entry_chains` — concatenate chains from runs (oldest run
  first) and *normalize*: everything before the most recent ``put`` or
  ``tombstone`` base is dead and dropped. This is what compaction does
  to bound read amplification ("the entries associated with a tuple in
  different SSTables are merged into one entry in a new SSTable").
* :func:`coalesce_entries` — resolve a chain to the tuple's current
  state, given codecs for the full image and the deltas. This is the
  read-path tuple reconstruction that makes the Log engines slow on
  reads (Section 5.2).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

EntryPair = Tuple[str, bytes]

_BASE_KINDS = ("put", "tombstone")


def merge_entry_chains(chains: Sequence[Sequence[EntryPair]]
                       ) -> List[EntryPair]:
    """Merge per-run chains (oldest run first) into one normalized
    chain: drop everything superseded by the latest base record."""
    flattened: List[EntryPair] = [pair for chain in chains
                                  for pair in chain]
    base_index = None
    for position in range(len(flattened) - 1, -1, -1):
        if flattened[position][0] in _BASE_KINDS:
            base_index = position
            break
    if base_index is None:
        return flattened
    if flattened[base_index][0] == "tombstone":
        # A tombstone kills the whole history; keep only the marker so
        # older runs' entries stay masked until they are compacted too.
        return [flattened[base_index]]
    return flattened[base_index:]


def coalesce_entries(chain: Sequence[EntryPair],
                     decode_full: Callable[[bytes], Dict[str, Any]],
                     decode_delta: Callable[[bytes], Dict[str, Any]],
                     ) -> Optional[Dict[str, Any]]:
    """Reconstruct a tuple from its (already complete) entry chain.

    Returns None if the tuple does not exist (tombstone, or no base
    image found — i.e. the caller must consult older runs before
    calling this).
    """
    values: Optional[Dict[str, Any]] = None
    for kind, data in chain:
        if kind == "tombstone":
            values = None
        elif kind == "put":
            values = decode_full(data)
        else:  # delta
            if values is not None:
                values.update(decode_delta(data))
    return values


def chain_has_base(chain: Sequence[EntryPair]) -> bool:
    """Whether the chain contains a ``put`` or ``tombstone`` base (if
    not, the read must continue into older runs)."""
    return any(kind in _BASE_KINDS for kind, __ in chain)
