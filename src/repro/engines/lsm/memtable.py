"""The MemTable: mutable top level of the LSM tree (Section 3.3).

Tuple modifications are recorded as *entries* appended to a per-key
chain: a full image for inserts (``PUT``), the changed fields for
updates (``DELTA``), and a tombstone for deletes. A B+tree index over
the keys handles point and range queries. Reconstructing a tuple
("tuple coalescing") walks the chain — and, when the base image lives
in an older run, continues into the rest of the LSM tree, which is the
Log engine's read amplification.

The traditional Log engine keeps the MemTable in memory-as-volatile
allocations and loses it on a crash (it is rebuilt from the WAL); the
NVM-Log engine keeps entries and index on NVM, synced as they are
written, so immutable MemTables replace SSTables entirely
(Section 4.3).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from ...index.bloom import BloomFilter
from ...index.cost import NVMIndexCostModel
from ...index.nv_btree import NVBTree
from ...index.stx_btree import STXBTree
from ...nvm.allocator import Allocation, NVMAllocator
from ...nvm.memory import NVMMemory

ENTRY_PUT = "put"
ENTRY_DELTA = "delta"
ENTRY_TOMBSTONE = "tombstone"

#: Accounted bytes of entry metadata beyond the payload.
ENTRY_OVERHEAD = 24


class MemTableEntry:
    """One modification record in a MemTable chain."""

    __slots__ = ("kind", "data", "allocation")

    def __init__(self, kind: str, data: bytes,
                 allocation: Allocation) -> None:
        self.kind = kind
        self.data = data
        self.allocation = allocation

    @property
    def size_bytes(self) -> int:
        return self.allocation.size


class MemTable:
    """One run of the LSM tree held in (NVM) memory."""

    def __init__(self, allocator: NVMAllocator, memory: NVMMemory,
                 node_size: int = 512, persistent: bool = False,
                 bloom_bits_per_key: int = 10,
                 bloom_hashes: int = 3) -> None:
        self._allocator = allocator
        self._memory = memory
        self._persistent = persistent
        self._bloom_bits_per_key = bloom_bits_per_key
        self._bloom_hashes = bloom_hashes
        cost = NVMIndexCostModel(allocator, memory, tag="index",
                                 persistent=persistent)
        self._index_cost = cost
        if persistent:
            self.index: STXBTree = NVBTree(node_size=node_size,
                                           cost_model=cost)
        else:
            self.index = STXBTree(node_size=node_size, cost_model=cost)
        self._chains: Dict[Any, List[MemTableEntry]] = {}
        self.size_bytes = 0
        self.immutable = False
        self.bloom: Optional[BloomFilter] = None
        self._bloom_alloc: Optional[Allocation] = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, key: Any, kind: str, data: bytes) -> MemTableEntry:
        """Append a modification entry for ``key``; returns the entry
        (the NVM-Log engine records its pointer in the WAL)."""
        if self.immutable:
            raise RuntimeError("MemTable is immutable")
        size = ENTRY_OVERHEAD + len(data)
        allocation = self._allocator.malloc_object(None, size, tag="table")
        entry = MemTableEntry(kind, data, allocation)
        allocation.obj = entry
        self._memory.touch_write(allocation.addr, size)
        if self._persistent:
            self._allocator.sync(allocation)
        chain = self._chains.get(key)
        if chain is None:
            chain = []
            self._chains[key] = chain
            self.index.put(key, key)
        chain.append(entry)
        self.size_bytes += size
        return entry

    def remove_entry(self, key: Any, entry: MemTableEntry) -> None:
        """Remove a specific entry (transaction rollback / undo)."""
        chain = self._chains.get(key)
        if chain is None or entry not in chain:
            return
        chain.remove(entry)
        self.size_bytes -= entry.size_bytes
        if self._allocator.resolve_optional(
                entry.allocation.addr) is entry.allocation:
            self._allocator.free(entry.allocation)
        if not chain:
            del self._chains[key]
            self.index.delete(key)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get_chain(self, key: Any) -> List[MemTableEntry]:
        """All entries for ``key``, oldest first (charges NVM reads)."""
        if self.bloom is not None:
            # Bloom probes are scattered single-line reads.
            self._memory.touch_read_scattered(
                self._bloom_alloc.addr, self._bloom_alloc.size,
                self.bloom.num_hashes)
            if not self.bloom.might_contain(key):
                return []
        if self.index.get(key) is None:
            return []
        chain = self._chains.get(key, [])
        for entry in chain:
            self._memory.touch_read(entry.allocation.addr,
                                    entry.allocation.size)
        return list(chain)

    def keys(self) -> Iterator[Any]:
        return iter(self.index)

    def keys_in_range(self, lo: Any = None, hi: Any = None) -> Iterator[Any]:
        for key, __ in self.index.items(lo=lo, hi=hi):
            yield key

    def chains(self) -> Iterator[Tuple[Any, List[MemTableEntry]]]:
        """(key, chain) pairs in key order (for flush / compaction)."""
        for key, __ in self.index.items():
            yield key, list(self._chains[key])

    def __contains__(self, key: Any) -> bool:
        return key in self._chains

    def __len__(self) -> int:
        return len(self._chains)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def mark_immutable(self) -> None:
        """Freeze the MemTable and build its Bloom filter (the NVM-Log
        engine's replacement for flushing to an SSTable)."""
        self.immutable = True
        self.bloom = BloomFilter.build(
            list(self._chains.keys()),
            bits_per_key=self._bloom_bits_per_key,
            num_hashes=self._bloom_hashes)
        self._bloom_alloc = self._allocator.malloc(
            max(self.bloom.size_bytes, 64), tag="index", kind="object")
        self._memory.touch_write(self._bloom_alloc.addr,
                                 self._bloom_alloc.size)
        if self._persistent:
            self._allocator.sync(self._bloom_alloc)

    def destroy(self) -> None:
        """Free every entry allocation (and let the index go)."""
        for chain in self._chains.values():
            for entry in chain:
                allocation = entry.allocation
                if self._allocator.resolve_optional(
                        allocation.addr) is allocation:
                    self._allocator.free(allocation)
        self._chains.clear()
        self._index_cost.drop_all()
        if self._bloom_alloc is not None:
            if self._allocator.resolve_optional(
                    self._bloom_alloc.addr) is self._bloom_alloc:
                self._allocator.free(self._bloom_alloc)
            self._bloom_alloc = None
        self.size_bytes = 0
