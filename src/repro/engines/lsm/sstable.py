"""SSTables: immutable sorted runs on the filesystem (Section 3.3).

When the Log engine's MemTable exceeds its threshold, it is flushed to
the filesystem as an immutable SSTable in a separate file, laid out in
the HDD/SSD-optimized inlined format. Each SSTable carries a Bloom
filter (to skip runs that cannot contain a key) and an in-memory sparse
index from key to file offset. The index and filter are volatile and
rebuilt when the SSTable is opened after a restart; the file itself is
durable.
"""

from __future__ import annotations

import pickle
import struct
from typing import (Any, Callable, Iterator, List, Optional,
                    Sequence, Tuple)

from ...index.bloom import BloomFilter
from ...index.stx_btree import STXBTree
from ...nvm.filesystem import NVMFile, NVMFilesystem
from .compaction import EntryPair

_RECORD_HEADER = struct.Struct("<II")  # key blob length, chain blob length

#: Builds the per-SSTable key -> location index. Engines pass a factory
#: producing a cost-charged STXBTree ("the engine builds indexes for
#: the new SSTable"); unit tests may use the free default.
IndexFactory = Callable[[], STXBTree]


class SSTable:
    """One immutable sorted run stored in its own file."""

    def __init__(self, filesystem: NVMFilesystem, file_name: str,
                 bloom_bits_per_key: int = 10,
                 bloom_hashes: int = 3,
                 index_factory: Optional[IndexFactory] = None,
                 allocator=None, memory=None) -> None:
        self._fs = filesystem
        self.file_name = file_name
        self._file: Optional[NVMFile] = None
        self._index_factory = index_factory or \
            (lambda: STXBTree(node_size=512))
        self._index: STXBTree = self._index_factory()
        self.bloom: Optional[BloomFilter] = None
        self._bloom_bits_per_key = bloom_bits_per_key
        self._bloom_hashes = bloom_hashes
        self._keys: List[Any] = []
        # When an allocator/memory pair is supplied, the Bloom filter
        # occupies an accounting region and probes charge NVM reads.
        self._allocator = allocator
        self._memory = memory
        self._bloom_alloc = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def write(cls, filesystem: NVMFilesystem, file_name: str,
              rows: Sequence[Tuple[Any, Sequence[EntryPair]]],
              bloom_bits_per_key: int = 10,
              bloom_hashes: int = 3,
              index_factory: Optional[IndexFactory] = None,
              allocator=None, memory=None) -> "SSTable":
        """Create an SSTable from (key, chain) rows in key order."""
        table = cls(filesystem, file_name,
                    bloom_bits_per_key=bloom_bits_per_key,
                    bloom_hashes=bloom_hashes,
                    index_factory=index_factory,
                    allocator=allocator, memory=memory)
        file = filesystem.open(file_name, create=True)
        filesystem.truncate(file, 0)
        offset = 0
        payload_parts = []
        for key, chain in rows:
            key_blob = pickle.dumps(key, protocol=4)
            chain_blob = pickle.dumps(list(chain), protocol=4)
            record = _RECORD_HEADER.pack(len(key_blob), len(chain_blob)) \
                + key_blob + chain_blob
            table._index.put(key, (offset, len(record)))
            table._keys.append(key)
            payload_parts.append(record)
            offset += len(record)
        filesystem.append(file, b"".join(payload_parts))
        filesystem.fsync(file)
        table._file = file
        table.bloom = BloomFilter.build(
            table._keys, bits_per_key=bloom_bits_per_key,
            num_hashes=bloom_hashes)
        table._place_bloom()
        return table

    def _place_bloom(self) -> None:
        if self._allocator is None or self.bloom is None:
            return
        self._release_bloom()
        self._bloom_alloc = self._allocator.malloc(
            max(self.bloom.size_bytes, 64), tag="index", kind="object")
        self._memory.touch_write(self._bloom_alloc.addr,
                                 self._bloom_alloc.size)

    def _release_bloom(self) -> None:
        if self._bloom_alloc is not None and self._allocator is not None:
            if self._allocator.resolve_optional(
                    self._bloom_alloc.addr) is self._bloom_alloc:
                self._allocator.free(self._bloom_alloc)
            self._bloom_alloc = None

    def open(self) -> None:
        """(Re)build the in-memory index and Bloom filter from the file
        — done after a restart ("the engine builds indexes for the new
        SSTable")."""
        file = self._fs.open(self.file_name)
        data = self._fs.read_all(file)
        self._release_index()
        self._index = self._index_factory()
        self._keys = []
        offset = 0
        while offset + _RECORD_HEADER.size <= len(data):
            key_length, chain_length = _RECORD_HEADER.unpack_from(
                data, offset)
            record_length = _RECORD_HEADER.size + key_length + chain_length
            key = pickle.loads(
                data[offset + _RECORD_HEADER.size:
                     offset + _RECORD_HEADER.size + key_length])
            self._index.put(key, (offset, record_length))
            self._keys.append(key)
            offset += record_length
        self._file = file
        self.bloom = BloomFilter.build(
            self._keys, bits_per_key=self._bloom_bits_per_key,
            num_hashes=self._bloom_hashes)
        self._place_bloom()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get_chain(self, key: Any) -> List[EntryPair]:
        """Entries for ``key`` in this run (empty if absent). The Bloom
        filter avoids the index look-up and file read for most absent
        keys (but the probes themselves are scattered NVM reads)."""
        if self.bloom is not None:
            if self._bloom_alloc is not None:
                self._memory.touch_read_scattered(
                    self._bloom_alloc.addr, self._bloom_alloc.size,
                    self.bloom.num_hashes)
            if not self.bloom.might_contain(key):
                return []
        location = self._index.get(key)
        if location is None:
            return []
        offset, length = location
        assert self._file is not None
        record = self._fs.read(self._file, offset, length)
        key_length, chain_length = _RECORD_HEADER.unpack_from(record, 0)
        chain = pickle.loads(
            record[_RECORD_HEADER.size + key_length:
                   _RECORD_HEADER.size + key_length + chain_length])
        return chain

    def keys(self) -> List[Any]:
        return list(self._keys)

    def rows(self) -> Iterator[Tuple[Any, List[EntryPair]]]:
        """All (key, chain) rows in key order (compaction input)."""
        for key in self._keys:
            yield key, self.get_chain(key)

    @property
    def size_bytes(self) -> int:
        if self._file is None:
            return 0
        return self._file.size

    def delete_file(self) -> None:
        if self._fs.exists(self.file_name):
            self._fs.delete(self.file_name)
        self._file = None
        self._release_index()
        self._release_bloom()

    def _release_index(self) -> None:
        """Free the volatile index's accounting allocations (engines
        attach the cost model to the tree they build)."""
        cost = getattr(self._index, "cost_model", None)
        if cost is not None:
            cost.drop_all()
