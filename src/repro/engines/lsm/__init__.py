"""LSM-tree components for the log-structured engines (Section 3.3).

* :class:`~repro.engines.lsm.memtable.MemTable` — the mutable top level
  of the LSM tree, with a B+tree index for point and range queries.
* :class:`~repro.engines.lsm.sstable.SSTable` — immutable sorted runs
  on the filesystem (traditional Log engine only; the NVM-Log engine
  keeps immutable MemTables on NVM instead).
* :mod:`~repro.engines.lsm.compaction` — merge logic that bounds read
  amplification by coalescing per-tuple entries across runs.
"""

from .compaction import coalesce_entries, merge_entry_chains
from .memtable import ENTRY_DELTA, ENTRY_PUT, ENTRY_TOMBSTONE, MemTable
from .sstable import SSTable

__all__ = [
    "ENTRY_DELTA",
    "ENTRY_PUT",
    "ENTRY_TOMBSTONE",
    "MemTable",
    "SSTable",
    "coalesce_entries",
    "merge_entry_chains",
]
