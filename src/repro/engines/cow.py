"""Copy-on-write updates engine (CoW, Section 3.2).

Shadow paging in the style of System R / LMDB: the engine maintains a
*current* directory (committed state) and a *dirty* directory (effects
of in-flight transactions) as two versions of an append-only
copy-on-write B+tree. Committing a batch of transactions writes the
newly created pages to the database file, fsyncs, and then atomically
updates the **master record** (at a fixed offset in the file) to point
at the new root. No write-ahead log and no recovery procedure: after a
crash the master record is guaranteed to point at a consistent current
directory.

Tuples are stored in the HDD/SSD-optimized format with all fields
inlined (Section 3.2) inside the leaves, so updates copy the entire
tuple even when only one field changes — the root of this engine's
write amplification. Secondary indexes map secondary keys to primary
keys and are versioned the same way.

Pages of nodes replaced by a committed epoch are recycled through a
free-page list (the two-version reuse LMDB performs), and the in-memory
node graph doubles as the internal page cache — it is volatile, so
after a restart table directories are demand-loaded from the file.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..config import EngineConfig
from ..core.schema import Schema
from ..core.tuple_codec import decode_inlined, encode_inlined
from ..core.transaction import Transaction
from ..errors import DuplicateKeyError, StorageEngineError, TupleNotFoundError
from ..fault.injector import register_fault_point
from ..index.cost import NVMIndexCostModel
from ..index.cow_btree import CoWBTree, CoWNode
from ..nvm.platform import Platform
from ..sim.stats import Category
from .base import StorageEngine, register_engine

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

#: Size of the master record region at the start of the database file:
#: a format version plus one root-page slot per directory.
MASTER_SLOTS = 64
MASTER_SIZE = 8 * (1 + MASTER_SLOTS)
_NO_ROOT = 0xFFFFFFFFFFFFFFFF

register_fault_point(
    "cow.persist.before_fsync",
    "epoch's new pages written to the file, not yet fsync'd",
    engines=("cow",))
register_fault_point(
    "cow.master_flip.before",
    "new pages durable, master record not yet updated",
    engines=("cow", "nvm-cow"))
register_fault_point(
    "cow.master_flip.after_write",
    "master record written in place, not yet fsync'd",
    engines=("cow",))
register_fault_point(
    "cow.master_flip.after",
    "master record durable, superseded pages not yet recycled",
    engines=("cow", "nvm-cow"))


class _PageCache:
    """LRU cache of directory pages held in memory (Section 3.2: "the
    engine maintains an internal page cache to keep the hot pages in
    memory"). A miss charges a filesystem page read."""

    def __init__(self, capacity_pages: int, on_miss) -> None:
        self.capacity = max(capacity_pages, 1)
        self._on_miss = on_miss
        self._pages: Dict[int, None] = {}
        self.hits = 0
        self.misses = 0

    def access(self, node_id: int, is_new: bool = False) -> None:
        if node_id in self._pages:
            self.hits += 1
            del self._pages[node_id]
        else:
            if not is_new:
                self.misses += 1
                self._on_miss()
            while len(self._pages) >= self.capacity:
                del self._pages[next(iter(self._pages))]
        self._pages[node_id] = None

    def invalidate(self, node_id: int) -> None:
        self._pages.pop(node_id, None)

    def clear(self) -> None:
        self._pages.clear()


class _PagedCostModel:
    """Wraps the in-memory cost model with page-cache accounting."""

    def __init__(self, inner: NVMIndexCostModel,
                 page_cache: _PageCache) -> None:
        self._inner = inner
        self._cache = page_cache

    def node_allocated(self, node_id: int, size: int) -> None:
        self._inner.node_allocated(node_id, size)
        self._cache.access(node_id, is_new=True)

    def node_freed(self, node_id: int) -> None:
        self._cache.invalidate(node_id)
        self._inner.node_freed(node_id)

    def node_probed(self, node_id: int, size: int) -> None:
        self._cache.access(node_id)
        self._inner.node_probed(node_id, size)

    def node_read(self, node_id: int, size: int) -> None:
        self._cache.access(node_id)
        self._inner.node_read(node_id, size)

    def node_written(self, node_id: int, size: int) -> None:
        self._cache.access(node_id, is_new=True)
        self._inner.node_written(node_id, size)

    def sync_node(self, node_id: int, offset: int, size: int) -> None:
        self._inner.sync_node(node_id, offset, size)


class _Directory:
    """One versioned directory (primary table or secondary index)."""

    __slots__ = ("name", "tree", "slot", "page_of", "loaded")

    def __init__(self, name: str, tree: CoWBTree, slot: int) -> None:
        self.name = name
        self.tree = tree
        self.slot = slot            # master-record slot index
        self.page_of: Dict[int, int] = {}   # node_id -> page number
        self.loaded = True


@register_engine
class CoWEngine(StorageEngine):
    """Copy-on-write updates without logging."""

    name = "cow"
    is_nvm_aware = False
    instant_recovery = True

    def __init__(self, platform: Platform, config: EngineConfig) -> None:
        super().__init__(platform, config)
        self._dirs: Dict[str, _Directory] = {}
        self._tables: Dict[str, List[str]] = {}  # table -> its dir names
        self._file = platform.filesystem.open("cow/database",
                                              create=True)
        if self._file.size < MASTER_SIZE:
            empty = _U64.pack(1) + _U64.pack(_NO_ROOT) * MASTER_SLOTS
            platform.filesystem.write(self._file, 0, empty)
            platform.filesystem.fsync(self._file)
        self._free_pages: List[int] = []
        self._next_page = 0
        self._next_slot = 0
        self.page_size = config.cow_btree_node_size

    # ------------------------------------------------------------------
    # Directory construction
    # ------------------------------------------------------------------

    def _make_tree(self, schema: Optional[Schema]) -> CoWBTree:
        inner = NVMIndexCostModel(self.allocator, self.memory,
                                  tag="other", persistent=False)
        # A page-cache miss reads the page through the memory-mapped
        # file (LMDB maps the database, so reads bypass the syscall
        # path): a prefetch-friendly bulk NVM read of one page.
        page_cache = _PageCache(
            max(1, self.config.page_cache_bytes // self.page_size),
            on_miss=lambda: self.platform.device.charge_bulk_load(
                self.page_size, prefetch_discount=0.1))
        cost = _PagedCostModel(inner, page_cache)
        leaf_fanout = None
        if schema is not None:
            leaf_fanout = max(2, self.page_size // schema.inlined_size)
        return CoWBTree(node_size=self.page_size, cost_model=cost,
                        leaf_fanout=leaf_fanout)

    def _create_table_storage(self, schema: Schema) -> None:
        names = []
        directory = self._new_directory(f"{schema.table}", schema)
        names.append(directory.name)
        for index_name in schema.secondary_indexes:
            secondary = self._new_directory(
                f"{schema.table}.{index_name}", None)
            names.append(secondary.name)
        self._tables[schema.table] = names

    def _new_directory(self, name: str,
                       schema: Optional[Schema]) -> _Directory:
        if self._next_slot >= MASTER_SLOTS:
            raise StorageEngineError("master record is full")
        directory = _Directory(name, self._make_tree(schema),
                               self._next_slot)
        self._next_slot += 1
        self._dirs[name] = directory
        return directory

    def _primary_dir(self, table: str) -> _Directory:
        self._schema(table)
        self._ensure_loaded(table)
        return self._dirs[table]

    def _secondary_dir(self, table: str, index_name: str) -> _Directory:
        self._ensure_loaded(table)
        return self._dirs[f"{table}.{index_name}"]

    # ------------------------------------------------------------------
    # Leaf value representation (overridden by NVM-CoW)
    # ------------------------------------------------------------------

    def _encode_tuple(self, txn: Transaction, schema: Schema,
                      values: Dict[str, Any]) -> Any:
        """Leaf value for a tuple: the fully-inlined byte image."""
        return encode_inlined(schema, values)

    def _decode_tuple(self, schema: Schema, stored: Any) -> Dict[str, Any]:
        return decode_inlined(schema, stored)

    def _release_tuple_value(self, stored: Any) -> None:
        """Reclaim out-of-tree storage for a replaced/deleted value
        (nothing to do when tuples are inlined in the leaves)."""

    # ------------------------------------------------------------------
    # Primitive operations
    # ------------------------------------------------------------------

    def insert(self, txn: Transaction, table: str,
               values: Dict[str, Any]) -> None:
        txn.require_active()
        schema = self._schema(table)
        schema.validate(values)
        directory = self._primary_dir(table)
        key = schema.key_of(values)
        with self.stats.category(Category.STORAGE):
            directory.tree.begin_batch()
            if directory.tree.get(key) is not None:
                raise DuplicateKeyError(f"{table}: key {key!r} exists")
            stored = self._encode_tuple(txn, schema, values)
            directory.tree.put(key, stored)
        with self.stats.category(Category.INDEX):
            self._secondary_add(table, schema, key, values)
        txn.engine_state.setdefault("undo", []).append(
            ("insert", table, key, values))
        txn.engine_state.setdefault("created_values", []).append(stored)

    def update(self, txn: Transaction, table: str, key: Any,
               changes: Dict[str, Any]) -> None:
        txn.require_active()
        schema = self._schema(table)
        schema.validate_partial(changes)
        directory = self._primary_dir(table)
        with self.stats.category(Category.STORAGE):
            directory.tree.begin_batch()
            stored = directory.tree.get(key)
            if stored is None:
                raise TupleNotFoundError(
                    f"{table}: no tuple with key {key!r}")
            old_values = self._decode_tuple(schema, stored)
            # Copy-on-write: copy the whole tuple, modify the copy.
            new_values = dict(old_values)
            new_values.update(changes)
            new_stored = self._encode_tuple(txn, schema, new_values)
            directory.tree.put(key, new_stored)
        with self.stats.category(Category.INDEX):
            self._secondary_update(table, schema, key, old_values,
                                   new_values)
        txn.engine_state.setdefault("undo", []).append(
            ("update", table, key, old_values,
             {name: new_values[name] for name in changes}, stored))
        txn.engine_state.setdefault("superseded", []).append(stored)
        txn.engine_state.setdefault("created_values", []).append(new_stored)

    def delete(self, txn: Transaction, table: str, key: Any) -> None:
        txn.require_active()
        schema = self._schema(table)
        directory = self._primary_dir(table)
        with self.stats.category(Category.STORAGE):
            directory.tree.begin_batch()
            stored = directory.tree.get(key)
            if stored is None:
                raise TupleNotFoundError(
                    f"{table}: no tuple with key {key!r}")
            old_values = self._decode_tuple(schema, stored)
            directory.tree.delete(key)
        with self.stats.category(Category.INDEX):
            self._secondary_remove(table, schema, key, old_values)
        txn.engine_state.setdefault("undo", []).append(
            ("delete", table, key, old_values, stored))
        txn.engine_state.setdefault("superseded", []).append(stored)

    def select(self, txn: Transaction, table: str,
               key: Any) -> Optional[Dict[str, Any]]:
        schema = self._schema(table)
        directory = self._primary_dir(table)
        with self.stats.category(Category.STORAGE):
            stored = directory.tree.get(key)
        if stored is None:
            return None
        return self._decode_tuple(schema, stored)

    def select_secondary(self, txn: Transaction, table: str,
                         index_name: str, key: Any) -> List[Any]:
        directory = self._secondary_dir(table, index_name)
        with self.stats.category(Category.INDEX):
            members = directory.tree.get(key)
        return sorted(members) if members else []

    def scan(self, txn: Transaction, table: str, lo: Any = None,
             hi: Any = None) -> Iterator[Tuple[Any, Dict[str, Any]]]:
        schema = self._schema(table)
        directory = self._primary_dir(table)
        for key, stored in list(directory.tree.items(lo=lo, hi=hi)):
            yield key, self._decode_tuple(schema, stored)

    # ------------------------------------------------------------------
    # Secondary index maintenance (versioned: values are frozensets)
    # ------------------------------------------------------------------

    def _secondary_add(self, table: str, schema: Schema, key: Any,
                       values: Dict[str, Any]) -> None:
        for index_name in schema.secondary_indexes:
            directory = self._secondary_dir(table, index_name)
            directory.tree.begin_batch()
            seckey = schema.index_key_of(index_name, values)
            members = directory.tree.get(seckey) or frozenset()
            directory.tree.put(seckey, members | {key})

    def _secondary_remove(self, table: str, schema: Schema, key: Any,
                          values: Dict[str, Any]) -> None:
        for index_name in schema.secondary_indexes:
            directory = self._secondary_dir(table, index_name)
            directory.tree.begin_batch()
            seckey = schema.index_key_of(index_name, values)
            members = directory.tree.get(seckey)
            if members is None:
                continue
            members = members - {key}
            if members:
                directory.tree.put(seckey, members)
            else:
                directory.tree.delete(seckey)

    def _secondary_update(self, table: str, schema: Schema, key: Any,
                          old_values: Dict[str, Any],
                          new_values: Dict[str, Any]) -> None:
        for index_name, columns in schema.secondary_indexes.items():
            old_key = schema.index_key_of(index_name, old_values)
            new_key = schema.index_key_of(index_name, new_values)
            if old_key == new_key:
                continue
            directory = self._secondary_dir(table, index_name)
            directory.tree.begin_batch()
            members = directory.tree.get(old_key)
            if members is not None:
                members = members - {key}
                if members:
                    directory.tree.put(old_key, members)
                else:
                    directory.tree.delete(old_key)
            members = directory.tree.get(new_key) or frozenset()
            directory.tree.put(new_key, members | {key})

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def _do_commit(self, txn: Transaction) -> None:
        """Logical commit only — the dirty directory flip happens at
        the group-commit boundary."""

    def _do_abort(self, txn: Transaction) -> None:
        """Un-apply the transaction's changes from the dirty version."""
        for record in reversed(txn.engine_state.get("undo", [])):
            kind, table = record[0], record[1]
            schema = self._schema(table)
            directory = self._primary_dir(table)
            directory.tree.begin_batch()
            if kind == "insert":
                __, __t, key, values = record
                directory.tree.delete(key)
                self._secondary_remove(table, schema, key, values)
            elif kind == "update":
                __, __t, key, old_values, changes, old_stored = record
                current = self._decode_tuple(
                    schema, directory.tree.get(key))
                directory.tree.put(key, old_stored)
                self._secondary_update(table, schema, key, current,
                                       old_values)
            else:  # delete
                __, __t, key, old_values, old_stored = record
                directory.tree.put(key, old_stored)
                self._secondary_add(table, schema, key, old_values)
        # The new tuple copies the txn created are garbage now; the
        # superseded values remain live again.
        txn.engine_state.pop("superseded", None)
        for stored in txn.engine_state.pop("created_values", []):
            self._release_tuple_value(stored)

    def _do_flush_commits(self) -> None:
        """Persist created pages and flip the master record — the group
        commit mechanism of Section 3.2."""
        dirty = [directory for directory in self._dirs.values()
                 if directory.tree.in_batch]
        if not dirty:
            return
        reclaimable: List[int] = []
        with self.tracer.span("cow.page_persist",
                              directories=len(dirty)):
            for directory in dirty:
                directory.tree.commit(
                    persist=lambda created, root, d=directory:
                    self._persist_nodes(d, created, root, reclaimable))
        self.faults.fire("cow.master_flip.before")
        with self.tracer.span("cow.master_flip"):
            self._write_master(dirty)
        self.faults.fire("cow.master_flip.after")
        # Only after the master record is durable are the previous
        # version's pages truly dead and safe to recycle.
        self._free_pages.extend(reclaimable)
        self._reclaim_superseded()

    def _reclaim_superseded(self) -> None:
        for txn in self._pending_durable:
            for stored in txn.engine_state.pop("superseded", []):
                self._release_tuple_value(stored)

    # ------------------------------------------------------------------
    # Page I/O
    # ------------------------------------------------------------------

    def _persist_nodes(self, directory: _Directory,
                       created: List[CoWNode], root: CoWNode,
                       reclaimable: List[int]) -> None:
        """Write this epoch's new nodes to the file, children first so
        that every child already has a page number. Pages of replaced
        nodes (LMDB's two-version reuse) are collected into
        ``reclaimable`` — the caller recycles them only after the
        master record flip is durable."""
        created_ids = {node.node_id for node in created}
        ordered = self._postorder(root, created_ids)
        for node in ordered:
            payload = self._serialize_node(directory, node)
            record = _U32.pack(len(payload)) + payload
            count = -(-len(record) // self.page_size)
            page = self._allocate_pages(count)
            directory.page_of[node.node_id] = (page, count)
            self.filesystem.write(
                self._file, MASTER_SIZE + page * self.page_size,
                record.ljust(count * self.page_size, b"\x00"))
        self.faults.fire("cow.persist.before_fsync")
        self.filesystem.fsync(self._file)
        for node in directory.tree.replaced_this_epoch():
            location = directory.page_of.pop(node.node_id, None)
            if location is not None:
                page, count = location
                reclaimable.extend(range(page, page + count))

    def _postorder(self, root: CoWNode, created_ids: set) -> List[CoWNode]:
        ordered: List[CoWNode] = []
        seen = set()

        def visit(node: CoWNode) -> None:
            if node.node_id in seen or node.node_id not in created_ids:
                return
            seen.add(node.node_id)
            if not node.is_leaf:
                for child in node.children:
                    visit(child)
            ordered.append(node)

        visit(root)
        return ordered

    def _serialize_node(self, directory: _Directory,
                        node: CoWNode) -> bytes:
        if node.is_leaf:
            return pickle.dumps(("L", node.keys, node.values),
                                protocol=4)
        child_pages = [directory.page_of[child.node_id][0]
                       for child in node.children]
        return pickle.dumps(("B", node.keys, child_pages), protocol=4)

    def _allocate_pages(self, count: int) -> int:
        """Allocate ``count`` pages; single pages come from the free
        list, multi-page (overflow) nodes take fresh consecutive
        pages at the end of the file."""
        if count == 1 and self._free_pages:
            return self._free_pages.pop()
        page = self._next_page
        self._next_page += count
        return page

    def _write_master(self, dirty: List[_Directory]) -> None:
        """Atomically update the master record to point at the new
        roots (one durable write after the page fsync)."""
        for directory in dirty:
            location = directory.page_of.get(
                directory.tree.current_root.node_id)
            if location is None:
                # Root unchanged this epoch (e.g. abort-only batch).
                continue
            self.filesystem.write(
                self._file, 8 * (1 + directory.slot),
                _U64.pack(location[0]))
        self.faults.fire("cow.master_flip.after_write")
        self.filesystem.fsync(self._file)

    # ------------------------------------------------------------------
    # Restart events
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        """The page cache (in-memory node graphs) is volatile."""
        for directory in self._dirs.values():
            directory.loaded = False
        self._pending_durable.clear()
        self._commits_since_flush = 0

    def recover(self) -> float:
        """No recovery: read the master record; directories are
        demand-loaded on first access (the DBMS is online immediately,
        Section 3.2)."""
        start_ns = self.clock.now_ns
        self.faults.fire("recovery.begin")
        with self.stats.category(Category.RECOVERY), \
                self.tracer.span("recovery.total", engine=self.name):
            with self.tracer.span("recovery.master_read"):
                self.filesystem.read(self._file, 0, MASTER_SIZE)
        self.faults.fire("recovery.end")
        return self.clock.elapsed_since(start_ns) / 1e9

    def _ensure_loaded(self, table: str) -> None:
        for name in self._tables.get(table, [table]):
            directory = self._dirs[name]
            if not directory.loaded:
                self._load_directory(directory)

    def _load_directory(self, directory: _Directory) -> None:
        """Demand-load a directory's reachable pages from the file."""
        with self.stats.category(Category.STORAGE):
            schema = self.schemas.get(directory.name)
            directory.tree = self._make_tree(schema)
            directory.page_of.clear()
            raw = self.filesystem.read(
                self._file, 8 * (1 + directory.slot), 8)
            root_page = _U64.unpack(raw)[0]
            if root_page == _NO_ROOT:
                directory.loaded = True
                return
            root, size, used_pages = self._load_page_graph(directory,
                                                           root_page)
            directory.tree.install_recovered_root(root, size)
            directory.loaded = True
            self._rebuild_free_pages()

    def _load_page_graph(self, directory: _Directory,
                         root_page: int) -> Tuple[CoWNode, int, set]:
        used = set()
        size = 0

        def load(page: int) -> CoWNode:
            nonlocal size
            offset = MASTER_SIZE + page * self.page_size
            first = self.filesystem.read(self._file, offset,
                                         self.page_size)
            length = _U32.unpack_from(first, 0)[0]
            record = first[4:4 + length]
            if 4 + length > self.page_size:
                record += self.filesystem.read(
                    self._file, offset + self.page_size,
                    4 + length - self.page_size)
            count = -(-(4 + length) // self.page_size)
            used.update(range(page, page + count))
            kind, keys, rest = pickle.loads(record)
            node = directory.tree.materialize_node(kind == "L")
            node.keys = keys
            if kind == "L":
                node.values = rest
                size += len(keys)
            else:
                node.children = [load(child_page) for child_page in rest]
            directory.page_of[node.node_id] = (page, count)
            return node

        root = load(root_page)
        return root, size, used

    def _rebuild_free_pages(self) -> None:
        """After (re)loads, recompute which pages are unreferenced."""
        live = {page
                for directory in self._dirs.values()
                for start, count in directory.page_of.values()
                for page in range(start, start + count)}
        if self._next_page < (self._file.size - MASTER_SIZE) \
                // self.page_size:
            self._next_page = (self._file.size - MASTER_SIZE) \
                // self.page_size
        self._free_pages = [page for page in range(self._next_page)
                            if page not in live]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def storage_breakdown(self) -> Dict[str, int]:
        by_tag = self.allocator.bytes_by_tag()
        return {
            "table": self._file.size,
            "index": by_tag.get("index", 0),
            "log": 0,
            "checkpoint": 0,
            "other": by_tag.get("other", 0),  # the page cache
        }
