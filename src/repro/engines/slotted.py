"""Slotted storage pools (Section 3.1 / 4.1).

A table's storage area is split into separate pools for fixed-size
blocks and variable-length blocks. The fixed-size pool stores tuples in
fixed-size slots (byte-aligned, offsets computable); any field larger
than 8 bytes goes to a variable-length slot whose 8-byte pointer is
stored at the field's position. Deleted slots return to a free list;
when the free list is empty a new block is allocated through the
allocator interface.

For the NVM-aware engines the blocks are *persisted* allocations:
tuples written into them survive a crash, and each slot's header byte
carries the durability state (unallocated / allocated / persisted) that
lets recovery reclaim slots of uncommitted transactions (Section 4.1).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Iterator, List, Set

from ..core.schema import FIELD_SLOT_SIZE, SLOT_HEADER_SIZE, Schema
from ..core.tuple_codec import (STATE_PERSISTED, STATE_UNALLOCATED,
                                decode_slotted)
from ..errors import InvalidAddressError
from ..nvm.allocator import Allocation, NVMAllocator
from ..nvm.memory import NVMMemory
from ..nvm.pointers import NVPtr

#: Tuple slots per fixed-size block allocation.
SLOTS_PER_BLOCK = 64

_U64 = struct.Struct("<Q")


def read_slotted_tuple(schema: Schema, pool: "FixedSlotPool",
                       varlen: "VarlenPool", addr: int) -> Dict[str, Any]:
    """Read and decode one tuple: the fixed-size slot first, then all
    of its variable-length fields as one overlapped batch (the field
    pointers are independent once the slot is in hand)."""
    slot = pool.read_slot(addr)[:schema.fixed_slot_size]
    pointers = []
    offset = SLOT_HEADER_SIZE
    for column in schema.columns:
        if not column.inline:
            pointers.append(_U64.unpack_from(slot, offset)[0])
        offset += FIELD_SLOT_SIZE
    blobs = varlen.read_many(pointers) if pointers else {}
    return decode_slotted(schema, slot, lambda pointer: blobs[pointer])


class FixedSlotPool:
    """Pool of fixed-size tuple slots for one table."""

    def __init__(self, schema: Schema, allocator: NVMAllocator,
                 memory: NVMMemory, persistent: bool,
                 tag: str = "table", extra_bytes: int = 0) -> None:
        self.schema = schema
        #: Slots may carry an engine-defined suffix after the tuple
        #: bytes (e.g. the MVCC engine's version prologue).
        self.slot_size = schema.fixed_slot_size + extra_bytes
        self._allocator = allocator
        self._memory = memory
        self._persistent = persistent
        self._tag = tag
        self._blocks: List[Allocation] = []
        self._free_slots: List[NVPtr] = []
        self._live_slots: Set[NVPtr] = set()
        #: Slots allocated whose persisted state byte was never set —
        #: the only ones post-restart reclamation must inspect.
        self._unpersisted_slots: Set[NVPtr] = set()

    def allocate_slot(self) -> NVPtr:
        """Take a slot from the free list, growing the pool if empty."""
        if not self._free_slots:
            self._grow()
        addr = self._free_slots.pop()
        self._live_slots.add(addr)
        self._unpersisted_slots.add(addr)
        return addr

    def _grow(self) -> None:
        block = self._allocator.malloc(
            self.slot_size * SLOTS_PER_BLOCK, tag=self._tag)
        if self._persistent:
            self._allocator.persist(block)
        self._blocks.append(block)
        for index in reversed(range(SLOTS_PER_BLOCK)):
            self._free_slots.append(block.addr + index * self.slot_size)

    def free_slot(self, addr: NVPtr) -> None:
        """Return a slot to the free list and clear its state byte."""
        if addr not in self._live_slots:
            raise InvalidAddressError(f"slot {addr:#x} is not live")
        self._live_slots.remove(addr)
        self._unpersisted_slots.discard(addr)
        self._memory.store(addr, bytes([STATE_UNALLOCATED]))
        if self._persistent:
            # The cleared state byte must reach NVM before the freeing
            # transaction's durable point — otherwise a crash resurrects
            # the slot as allocated while the free list also hands it
            # out after restart.
            self._memory.sync(addr, 1)
        self._free_slots.append(addr)

    def write_slot(self, addr: NVPtr, data: bytes) -> None:
        if len(data) != self.slot_size:
            raise InvalidAddressError(
                f"slot write of {len(data)} bytes, expected "
                f"{self.slot_size}")
        self._memory.store(addr, data)

    def read_slot(self, addr: NVPtr) -> bytes:
        return self._memory.load(addr, self.slot_size)

    def set_state(self, addr: NVPtr, state: int, durable: bool) -> None:
        """Update the slot's durability state byte (optionally synced)."""
        self._memory.store(addr, bytes([state]))
        if durable:
            self._memory.sync(addr, 1)
        if state == STATE_PERSISTED and durable:
            self._unpersisted_slots.discard(addr)

    def read_state(self, addr: NVPtr) -> int:
        return self._memory.load(addr, 1)[0]

    def sync_slot(self, addr: NVPtr) -> None:
        """Durably flush the whole slot (the NVM engines' 'sync tuple
        with NVM' step from Table 2)."""
        self._memory.sync(addr, self.slot_size)

    def mark_persisted(self, addr: NVPtr) -> None:
        """Record that the slot's persisted state durably reached NVM
        (post-restart reclamation no longer needs to inspect it)."""
        self._unpersisted_slots.discard(addr)

    def recover_unpersisted(self) -> int:
        """Post-restart slot reclamation (Section 4.1): slots that are
        allocated but not persisted transition back to unallocated.
        Returns how many were reclaimed."""
        reclaimed = 0
        for addr in list(self._unpersisted_slots):
            if addr in self._live_slots \
                    and self.read_state(addr) != STATE_PERSISTED:
                self.free_slot(addr)
                reclaimed += 1
            else:
                self._unpersisted_slots.discard(addr)
        return reclaimed

    def live_addresses(self) -> Iterator[NVPtr]:
        return iter(sorted(self._live_slots))

    def mark_live(self, addr: NVPtr) -> None:
        """Re-register a slot as live (used when rebuilding engine
        metadata from durable slots after a restart)."""
        self._live_slots.add(addr)
        if addr in self._free_slots:
            self._free_slots.remove(addr)

    @property
    def live_count(self) -> int:
        return len(self._live_slots)

    def owns(self, addr: NVPtr) -> bool:
        """Whether ``addr`` is a live slot of this pool."""
        return addr in self._live_slots

    def destroy(self) -> None:
        """Free every block (volatile engine losing its pool)."""
        for block in self._blocks:
            if self._allocator.resolve_optional(block.addr) is block:
                self._allocator.free(block)
        self._blocks.clear()
        self._free_slots.clear()
        self._live_slots.clear()


class VarlenPool:
    """Pool of variable-length slots (non-inlined fields)."""

    def __init__(self, allocator: NVMAllocator, memory: NVMMemory,
                 persistent: bool, tag: str = "table") -> None:
        self._allocator = allocator
        self._memory = memory
        self._persistent = persistent
        self._tag = tag
        self._slots: Dict[NVPtr, Allocation] = {}

    def write(self, data: bytes) -> NVPtr:
        """Allocate a variable-length slot holding ``data``."""
        allocation = self._allocator.malloc(len(data), tag=self._tag)
        if self._persistent:
            self._allocator.persist(allocation)
        self._memory.store(allocation.addr, data)
        self._slots[allocation.addr] = allocation
        return allocation.addr

    def read(self, addr: NVPtr) -> bytes:
        allocation = self._slots[addr]
        return self._memory.load(allocation.addr, allocation.size)

    def read_many(self, addrs: List[NVPtr]) -> Dict[NVPtr, bytes]:
        """Batch-read several slots: their addresses are independent,
        so the loads overlap (memory-level parallelism)."""
        ranges = [(addr, self._slots[addr].size) for addr in addrs]
        blobs = self._memory.load_batch(ranges)
        return dict(zip(addrs, blobs))

    def sync(self, addr: NVPtr) -> None:
        allocation = self._slots[addr]
        self._allocator.sync(allocation)

    def sync_many(self, addrs: List[NVPtr],
                  extra_ranges: Any = ()) -> None:
        """Durably flush several slots (plus optional raw ranges, e.g.
        the fixed slot pointing at them) with one batched sync: a
        tuple's variable-length slots are allocated back to back, so
        per-slot syncs re-flush shared boundary cache lines and pay a
        fence per slot."""
        self._allocator.sync_many([self._slots[addr] for addr in addrs],
                                  extra_ranges=extra_ranges)

    def free(self, addr: NVPtr) -> None:
        allocation = self._slots.pop(addr)
        if self._allocator.resolve_optional(allocation.addr) is allocation:
            self._allocator.free(allocation)

    def contains(self, addr: NVPtr) -> bool:
        return addr in self._slots

    def prune_dead(self) -> int:
        """Drop bookkeeping for slots the allocator reclaimed during
        crash recovery (never-persisted allocations). Returns count."""
        dead = [addr for addr, allocation in self._slots.items()
                if self._allocator.resolve_optional(addr) is not allocation]
        for addr in dead:
            del self._slots[addr]
        return len(dead)

    @property
    def live_count(self) -> int:
        return len(self._slots)

    def destroy(self) -> None:
        for addr in list(self._slots):
            self.free(addr)
