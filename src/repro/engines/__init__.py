"""The six storage engines from the paper.

Traditional engines (Section 3) — designed for a two-tier
DRAM + HDD/SSD hierarchy, using allocator memory as if volatile:

* :class:`~repro.engines.inp.InPEngine` — in-place updates with an
  ARIES-style filesystem WAL and gzip checkpoints.
* :class:`~repro.engines.cow.CoWEngine` — copy-on-write updates
  (shadow paging) over a filesystem-resident CoW B+tree.
* :class:`~repro.engines.log_engine.LogEngine` — log-structured
  updates: MemTable + SSTables with leveled compaction and a WAL.

NVM-aware engines (Section 4) — leverage NVM's byte-addressable
persistence through the allocator interface:

* :class:`~repro.engines.nvm_inp.NVMInPEngine` — WAL holds non-volatile
  *pointers* instead of tuple copies; non-volatile B+tree indexes;
  undo-only instant recovery.
* :class:`~repro.engines.nvm_cow.NVMCoWEngine` — non-volatile CoW
  B+tree accessed directly via the allocator; no recovery needed.
* :class:`~repro.engines.nvm_log.NVMLogEngine` — all-NVM MemTables
  (immutable after fill), pointer-based WAL for undo only.
"""

from .base import ENGINE_NAMES, StorageEngine, create_engine
from .cow import CoWEngine
from .hybrid_inp import HybridInPEngine
from .inp import InPEngine
from .log_engine import LogEngine
from .nvm_cow import NVMCoWEngine
from .nvm_inp import NVMInPEngine
from .nvm_log import NVMLogEngine
from .nvm_mvcc import NVMMVCCEngine

__all__ = [
    "ENGINE_NAMES",
    "CoWEngine",
    "HybridInPEngine",
    "InPEngine",
    "LogEngine",
    "NVMCoWEngine",
    "NVMInPEngine",
    "NVMLogEngine",
    "NVMMVCCEngine",
    "StorageEngine",
    "create_engine",
]
