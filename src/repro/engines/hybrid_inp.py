"""Hybrid DRAM + NVM in-place updates engine (Appendix D extension).

The paper's future-work discussion: "A hybrid DRAM and NVM storage
hierarchy is a viable alternative, particularly in case of high NVM
latency technologies". This engine explores that design: tuples and
the WAL stay exactly as in the traditional InP engine (NVM used for
capacity, filesystem WAL for durability), but the volatile B+tree
indexes live on the DRAM tier — index descents run at DRAM speed
instead of paying NVM read latency.

Trade-offs relative to InP:

* faster index-heavy reads, increasingly so at high NVM latency;
* identical durability (the indexes were volatile in InP anyway and
  are rebuilt during recovery in both engines);
* consumes scarce DRAM capacity and its refresh energy — the
  motivation for the paper's NVM-only baseline.

Requires a platform configured with a DRAM tier
(``PlatformConfig(dram_capacity_bytes=...)``).
"""

from __future__ import annotations

from ..config import EngineConfig
from ..errors import ConfigError
from ..index.stx_btree import STXBTree
from ..nvm.dram import DRAMBackedIndexCostModel
from ..nvm.platform import Platform
from .base import register_engine
from .inp import InPEngine


@register_engine
class HybridInPEngine(InPEngine):
    """In-place updates with DRAM-resident indexes."""

    name = "hybrid-inp"
    is_nvm_aware = True  # exploits the hierarchy, though not NVM itself

    def __init__(self, platform: Platform, config: EngineConfig) -> None:
        if platform.dram is None:
            raise ConfigError(
                "the hybrid-inp engine needs a DRAM tier; set "
                "PlatformConfig(dram_capacity_bytes=...)")
        super().__init__(platform, config)

    def _make_index(self) -> STXBTree:
        cost = DRAMBackedIndexCostModel(self.platform.dram)
        return STXBTree(node_size=self.config.btree_node_size,
                        cost_model=cost)

    def storage_breakdown(self) -> dict:
        breakdown = super().storage_breakdown()
        # Indexes live in DRAM, not on NVM.
        breakdown["index"] = 0
        return breakdown
