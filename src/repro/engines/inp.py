"""In-place updates engine (InP, Section 3.1).

The most common storage engine strategy: a single version of each
tuple, updated in place. Modeled after VoltDB — no buffer pool; tuples
live in fixed-size slots (non-inlined fields in variable-length slots);
STX B+trees for primary and secondary indexes.

Durability comes from an ARIES-style write-ahead log on the filesystem
with group commit, plus periodic gzip-compressed checkpoints that bound
recovery latency. The engine treats allocator memory as *volatile*:
after a crash everything in the pools and indexes is gone, and recovery
loads the last checkpoint, replays the WAL for committed transactions,
and rebuilds all indexes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..config import EngineConfig
from ..core.schema import FIELD_SLOT_SIZE, SLOT_HEADER_SIZE, ColumnType, Schema
from ..core.tuple_codec import (decode_fields, decode_inlined,
                                encode_fields, encode_inlined,
                                encode_slotted)
from ..core.transaction import Transaction
from ..errors import DuplicateKeyError, TupleNotFoundError
from ..fault.injector import register_fault_point
from ..index.cost import NVMIndexCostModel
from ..index.stx_btree import STXBTree
from ..nvm.platform import Platform
from ..sim.stats import Category
from . import wal as walmod
from .base import StorageEngine, register_engine
from .checkpoint import Checkpointer
from .slotted import FixedSlotPool, VarlenPool
from .wal import WALEntry, WriteAheadLog

import struct

_U64 = struct.Struct("<Q")

register_fault_point(
    "checkpoint.truncate_wal.before",
    "checkpoint installed, WAL about to be truncated",
    engines=("inp",))


class _Table:
    """Per-table storage state for the InP engine."""

    __slots__ = ("schema", "pool", "varlen", "primary", "secondary",
                 "slots", "varlen_of")

    def __init__(self, schema: Schema, engine: "InPEngine") -> None:
        self.schema = schema
        self.pool = FixedSlotPool(schema, engine.allocator, engine.memory,
                                  persistent=engine.pools_persistent)
        self.varlen = VarlenPool(engine.allocator, engine.memory,
                                 persistent=engine.pools_persistent)
        self.primary = engine._make_index()
        #: index name -> (btree mapping secondary key -> {primary keys})
        self.secondary: Dict[str, STXBTree] = {
            name: engine._make_index()
            for name in schema.secondary_indexes
        }
        #: primary key -> slot address (engine metadata mirror).
        self.slots: Dict[Any, int] = {}
        #: slot address -> varlen pointers owned by that tuple.
        self.varlen_of: Dict[int, List[int]] = {}


@register_engine
class InPEngine(StorageEngine):
    """In-place updates with filesystem WAL and checkpoints."""

    name = "inp"
    is_nvm_aware = False
    pools_persistent = False

    def __init__(self, platform: Platform, config: EngineConfig) -> None:
        super().__init__(platform, config)
        self._tables: Dict[str, _Table] = {}
        self._wal = WriteAheadLog(platform.filesystem,
                                  faults=platform.faults)
        self._checkpointer = Checkpointer(platform.filesystem,
                                          platform.clock,
                                          faults=platform.faults)
        self._commits_since_checkpoint = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _make_index(self) -> STXBTree:
        cost = NVMIndexCostModel(self.allocator, self.memory, tag="index",
                                 persistent=False)
        return STXBTree(node_size=self.config.btree_node_size,
                        cost_model=cost)

    def _create_table_storage(self, schema: Schema) -> None:
        self._tables[schema.table] = _Table(schema, self)

    def _table(self, name: str) -> _Table:
        self._schema(name)
        return self._tables[name]

    def _table_id(self, name: str) -> int:
        return sorted(self.schemas).index(name)

    def _table_name(self, table_id: int) -> str:
        return sorted(self.schemas)[table_id]

    # ------------------------------------------------------------------
    # Primitive operations (Table 2)
    # ------------------------------------------------------------------

    def insert(self, txn: Transaction, table: str,
               values: Dict[str, Any]) -> None:
        txn.require_active()
        store = self._table(table)
        key = store.schema.key_of(values)
        with self.stats.category(Category.INDEX):
            if key in store.slots:
                raise DuplicateKeyError(f"{table}: key {key!r} exists")
        # WAL first: full tuple after-image (Table 3: log = T).
        with self.stats.category(Category.RECOVERY):
            self._wal.append(WALEntry(
                walmod.OP_INSERT, txn.txn_id, self._table_id(table),
                key=key, after=encode_inlined(store.schema, values)))
        with self.stats.category(Category.STORAGE):
            addr = store.pool.allocate_slot()
            slot, pointers = encode_slotted(store.schema, values,
                                            store.varlen.write)
            store.pool.write_slot(addr, slot)
            store.varlen_of[addr] = pointers
        with self.stats.category(Category.INDEX):
            store.primary.put(key, addr)
            self._index_add(store, key, values)
        store.slots[key] = addr
        txn.engine_state.setdefault("undo", []).append(
            ("insert", table, key, addr))

    def update(self, txn: Transaction, table: str, key: Any,
               changes: Dict[str, Any]) -> None:
        txn.require_active()
        store = self._table(table)
        store.schema.validate_partial(changes)
        with self.stats.category(Category.INDEX):
            addr = store.primary.get(key)
        if addr is None:
            raise TupleNotFoundError(f"{table}: no tuple with key {key!r}")
        with self.stats.category(Category.STORAGE):
            old_values = self._read_tuple(store, addr)
        before = {name: old_values[name] for name in changes}
        # WAL: before and after images of the changed fields only
        # (Table 3: log = 2 x (F + V)).
        with self.stats.category(Category.RECOVERY):
            self._wal.append(WALEntry(
                walmod.OP_UPDATE, txn.txn_id, self._table_id(table),
                key=key,
                before=encode_fields(store.schema, before),
                after=encode_fields(store.schema, changes)))
        with self.stats.category(Category.STORAGE):
            replaced = self._write_fields(store, addr, changes)
        with self.stats.category(Category.INDEX):
            self._index_update(store, key, before, changes, old_values)
        txn.engine_state.setdefault("undo", []).append(
            ("update", table, key, addr, before, replaced))

    def delete(self, txn: Transaction, table: str, key: Any) -> None:
        txn.require_active()
        store = self._table(table)
        with self.stats.category(Category.INDEX):
            addr = store.primary.get(key)
        if addr is None:
            raise TupleNotFoundError(f"{table}: no tuple with key {key!r}")
        with self.stats.category(Category.STORAGE):
            old_values = self._read_tuple(store, addr)
        # WAL: full before-image (Table 3: log = T).
        with self.stats.category(Category.RECOVERY):
            self._wal.append(WALEntry(
                walmod.OP_DELETE, txn.txn_id, self._table_id(table),
                key=key, before=encode_inlined(store.schema, old_values)))
        with self.stats.category(Category.INDEX):
            store.primary.delete(key)
            self._index_remove(store, key, old_values)
        del store.slots[key]
        # The slot is reclaimed at commit; abort restores the entries.
        txn.engine_state.setdefault("undo", []).append(
            ("delete", table, key, addr, old_values))

    def select(self, txn: Transaction, table: str,
               key: Any) -> Optional[Dict[str, Any]]:
        store = self._table(table)
        with self.stats.category(Category.INDEX):
            addr = store.primary.get(key)
        if addr is None:
            return None
        with self.stats.category(Category.STORAGE):
            return self._read_tuple(store, addr)

    def select_secondary(self, txn: Transaction, table: str,
                         index_name: str, key: Any) -> List[Any]:
        store = self._table(table)
        with self.stats.category(Category.INDEX):
            matches = store.secondary[index_name].get(key)
        return sorted(matches) if matches else []

    def scan(self, txn: Transaction, table: str, lo: Any = None,
             hi: Any = None) -> Iterator[Tuple[Any, Dict[str, Any]]]:
        store = self._table(table)
        for key, addr in list(store.primary.items(lo=lo, hi=hi)):
            with self.stats.category(Category.STORAGE):
                values = self._read_tuple(store, addr)
            yield key, values

    # ------------------------------------------------------------------
    # Tuple I/O helpers
    # ------------------------------------------------------------------

    def _read_tuple(self, store: _Table, addr: int) -> Dict[str, Any]:
        from .slotted import read_slotted_tuple
        return read_slotted_tuple(store.schema, store.pool,
                                  store.varlen, addr)

    def _write_fields(self, store: _Table, addr: int,
                      changes: Dict[str, Any],
                      created: Optional[Dict[str, int]] = None,
                      ) -> Dict[str, int]:
        """In-place update of the changed fields; returns the old
        varlen pointers that were replaced (for undo). When ``created``
        is supplied it is filled with the fresh varlen pointers."""
        schema = store.schema
        replaced: Dict[str, int] = {}
        owned = store.varlen_of.setdefault(addr, [])
        for position, column in enumerate(schema.columns):
            if column.name not in changes:
                continue
            value = changes[column.name]
            offset = addr + SLOT_HEADER_SIZE + position * FIELD_SLOT_SIZE
            if column.type is ColumnType.STRING and not column.inline:
                old_ptr = _U64.unpack(
                    self.memory.load(offset, FIELD_SLOT_SIZE))[0]
                raw = value.encode("utf-8")
                new_ptr = store.varlen.write(
                    struct.pack("<I", len(raw)) + raw)
                self.memory.store(offset, _U64.pack(new_ptr))
                replaced[column.name] = old_ptr
                if created is not None:
                    created[column.name] = new_ptr
                if old_ptr in owned:
                    owned.remove(old_ptr)
                owned.append(new_ptr)
            else:
                fragment, __ = encode_slotted(
                    _single_column_schema(schema, column),
                    {column.name: value}, store.varlen.write)
                self.memory.store(
                    offset, fragment[SLOT_HEADER_SIZE:
                                     SLOT_HEADER_SIZE + FIELD_SLOT_SIZE])
        return replaced

    def _restore_fields(self, store: _Table, addr: int,
                        before: Dict[str, Any],
                        replaced: Dict[str, int]) -> None:
        """Undo an in-place update: inline fields get their old values
        written back; varlen fields get their *original pointers*
        restored and the aborted update's fresh slots freed."""
        schema = store.schema
        owned = store.varlen_of.setdefault(addr, [])
        for position, column in enumerate(schema.columns):
            if column.name not in before:
                continue
            offset = addr + SLOT_HEADER_SIZE + position * FIELD_SLOT_SIZE
            if column.name in replaced:
                new_ptr = _U64.unpack(
                    self.memory.load(offset, FIELD_SLOT_SIZE))[0]
                old_ptr = replaced[column.name]
                self.memory.store(offset, _U64.pack(old_ptr))
                if new_ptr in owned:
                    owned.remove(new_ptr)
                if store.varlen.contains(new_ptr):
                    store.varlen.free(new_ptr)
                owned.append(old_ptr)
            else:
                fragment, __ = encode_slotted(
                    _single_column_schema(schema, column),
                    {column.name: before[column.name]}, store.varlen.write)
                self.memory.store(
                    offset, fragment[SLOT_HEADER_SIZE:
                                     SLOT_HEADER_SIZE + FIELD_SLOT_SIZE])

    # ------------------------------------------------------------------
    # Secondary index maintenance
    # ------------------------------------------------------------------

    def _index_add(self, store: _Table, key: Any,
                   values: Dict[str, Any]) -> None:
        for name in store.secondary:
            seckey = store.schema.index_key_of(name, values)
            index = store.secondary[name]
            members = index.get(seckey)
            if members is None:
                index.put(seckey, {key})
            else:
                members.add(key)
                index.put(seckey, members)  # charge the node write

    def _index_remove(self, store: _Table, key: Any,
                      values: Dict[str, Any]) -> None:
        for name in store.secondary:
            seckey = store.schema.index_key_of(name, values)
            index = store.secondary[name]
            members = index.get(seckey)
            if members is not None:
                members.discard(key)
                if not members:
                    index.delete(seckey)
                else:
                    index.put(seckey, members)  # charge the node write

    def _index_update(self, store: _Table, key: Any,
                      before: Dict[str, Any], changes: Dict[str, Any],
                      old_values: Dict[str, Any]) -> None:
        new_values = dict(old_values)
        new_values.update(changes)
        for name, columns in store.schema.secondary_indexes.items():
            if not any(column in changes for column in columns):
                continue
            old_key = store.schema.index_key_of(name, old_values)
            new_key = store.schema.index_key_of(name, new_values)
            if old_key == new_key:
                continue
            index = store.secondary[name]
            members = index.get(old_key)
            if members is not None:
                members.discard(key)
                if not members:
                    index.delete(old_key)
                else:
                    index.put(old_key, members)
            members = index.get(new_key)
            if members is None:
                index.put(new_key, {key})
            else:
                members.add(key)
                index.put(new_key, members)

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def _do_commit(self, txn: Transaction) -> None:
        undo = txn.engine_state.get("undo")
        if not undo:
            return  # read-only transaction: nothing to log or reclaim
        self._wal.append(WALEntry(walmod.OP_COMMIT, txn.txn_id))
        # Reclaim space of deleted tuples and replaced varlen fields.
        for record in txn.engine_state.get("undo", []):
            if record[0] == "delete":
                __, table, __k, addr, __v = record
                store = self._table(table)
                self._release_tuple(store, addr)
            elif record[0] == "update":
                __, table, __k, __a, __b, replaced = record
                store = self._table(table)
                for old_ptr in replaced.values():
                    if store.varlen.contains(old_ptr):
                        store.varlen.free(old_ptr)
        self._commits_since_checkpoint += 1
        if self._commits_since_checkpoint >= self.checkpoint_interval_txns:
            self.checkpoint()

    def _do_flush_commits(self) -> None:
        with self.tracer.span("wal.fsync",
                              pending=self._wal.pending_bytes()):
            self._wal.flush()

    def _do_abort(self, txn: Transaction) -> None:
        self._wal.append(WALEntry(walmod.OP_ABORT, txn.txn_id))
        for record in reversed(txn.engine_state.get("undo", [])):
            kind = record[0]
            store = self._table(record[1])
            if kind == "insert":
                __, __t, key, addr = record
                with self.stats.category(Category.INDEX):
                    store.primary.delete(key)
                    self._index_remove(store, key,
                                       self._read_tuple(store, addr))
                del store.slots[key]
                self._release_tuple(store, addr)
            elif kind == "update":
                __, __t, key, addr, before, replaced = record
                current = self._read_tuple(store, addr)
                with self.stats.category(Category.STORAGE):
                    self._restore_fields(store, addr, before, replaced)
                with self.stats.category(Category.INDEX):
                    self._index_update(store, key, {}, before, current)
            else:  # delete
                __, __t, key, addr, old_values = record
                with self.stats.category(Category.INDEX):
                    store.primary.put(key, addr)
                    self._index_add(store, key, old_values)
                store.slots[key] = addr

    def _release_tuple(self, store: _Table, addr: int) -> None:
        with self.stats.category(Category.STORAGE):
            for pointer in store.varlen_of.pop(addr, []):
                if store.varlen.contains(pointer):
                    store.varlen.free(pointer)
            store.pool.free_slot(addr)

    # ------------------------------------------------------------------
    # Checkpointing & recovery
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Snapshot all tables, then truncate the WAL (Section 3.1)."""
        self.flush_commits()

        def rows_of(store: _Table):
            return (self._read_tuple(store, addr)
                    for addr in list(store.slots.values()))

        with self.stats.category(Category.RECOVERY), \
                self.tracer.span("checkpoint.write") as span:
            tables = {name: (store.schema, rows_of(store))
                      for name, store in self._tables.items()}
            size = self._checkpointer.write(tables)
            self.faults.fire("checkpoint.truncate_wal.before")
            self._wal.truncate()
            if span:
                span.tag(compressed_bytes=size,
                         number=self._checkpointer.checkpoints_taken)
        from .base import logger
        logger.info("%s: checkpoint #%d written (%d bytes compressed)",
                    self.name, self._checkpointer.checkpoints_taken, size)
        self._commits_since_checkpoint = 0

    def on_crash(self) -> None:
        """Everything in allocator memory is gone (volatile use)."""
        for store in self._tables.values():
            store.pool.destroy()
            store.varlen.destroy()
            store.slots.clear()
            store.varlen_of.clear()
        self._pending_durable.clear()
        self._commits_since_flush = 0

    def recover(self) -> float:
        """Load the last checkpoint, replay the WAL (redo committed
        transactions only), rebuild every index."""
        start_ns = self.clock.now_ns
        self.faults.fire("recovery.begin")
        with self.stats.category(Category.RECOVERY), \
                self.tracer.span("recovery.total", engine=self.name):
            with self.tracer.span("recovery.rebuild_storage"):
                for store in self._tables.values():
                    store.pool = FixedSlotPool(
                        store.schema, self.allocator, self.memory,
                        persistent=self.pools_persistent)
                    store.varlen = VarlenPool(
                        self.allocator, self.memory,
                        persistent=self.pools_persistent)
                    store.primary = self._make_index()
                    store.secondary = {name: self._make_index()
                                       for name in
                                       store.schema.secondary_indexes}
            with self.tracer.span("recovery.checkpoint_load") as span:
                restored = 0
                for name, values in self._checkpointer.read(self.schemas):
                    # SDA002 waived: InP (and hybrid-inp) rebuild
                    # *volatile* pools here; durability is the
                    # checkpoint + filesystem WAL, so the rebuilt
                    # slots need no NVM sync.
                    self._recover_insert(self._tables[name], values)  # noqa: SDA002
                    restored += 1
                if span:
                    span.tag(tuples=restored)
            self.faults.fire("recovery.checkpoint_loaded")
            with self.tracer.span("recovery.wal_replay") as span:
                committed = self._wal.committed_txn_ids()
                replayed = 0
                for entry in self._wal.replay():
                    if entry.op in (walmod.OP_COMMIT, walmod.OP_ABORT):
                        continue
                    if entry.txn_id not in committed:
                        continue
                    # SDA002 waived: WAL redo writes into the same
                    # volatile rebuilt pools as the checkpoint load
                    # above; the filesystem WAL remains the durable
                    # copy until the next checkpoint.
                    self._replay_entry(entry)  # noqa: SDA002
                    replayed += 1
                if span:
                    span.tag(entries=replayed, committed=len(committed))
            self.faults.fire("recovery.wal_replayed")
        from .base import logger
        logger.info("%s: recovery replayed WAL for %d committed txns",
                    self.name, len(committed))
        self.faults.fire("recovery.end")
        return self.clock.elapsed_since(start_ns) / 1e9

    def _recover_insert(self, store: _Table,
                        values: Dict[str, Any]) -> None:
        key = store.schema.key_of(values)
        addr = store.pool.allocate_slot()
        slot, pointers = encode_slotted(store.schema, values,
                                        store.varlen.write)
        store.pool.write_slot(addr, slot)
        store.varlen_of[addr] = pointers
        store.primary.put(key, addr)
        self._index_add(store, key, values)
        store.slots[key] = addr

    def _replay_entry(self, entry: WALEntry) -> None:
        name = self._table_name(entry.table_id)
        store = self._tables[name]
        if entry.op == walmod.OP_INSERT:
            values = decode_inlined(store.schema, entry.after)
            if entry.key not in store.slots:
                self._recover_insert(store, values)
        elif entry.op == walmod.OP_UPDATE:
            addr = store.slots.get(entry.key)
            if addr is None:
                return
            changes = decode_fields(store.schema, entry.after)
            old_values = self._read_tuple(store, addr)
            before = {k: old_values[k] for k in changes}
            self._write_fields(store, addr, changes)
            self._index_update(store, entry.key, before, changes,
                               old_values)
        elif entry.op == walmod.OP_DELETE:
            addr = store.slots.pop(entry.key, None)
            if addr is None:
                return
            old_values = self._read_tuple(store, addr)
            store.primary.delete(entry.key)
            self._index_remove(store, entry.key, old_values)
            self._release_tuple(store, addr)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def storage_breakdown(self) -> Dict[str, int]:
        by_tag = self.allocator.bytes_by_tag()
        return {
            "table": by_tag.get("table", 0),
            "index": by_tag.get("index", 0),
            "log": self._wal.size_bytes,
            "checkpoint": self._checkpointer.size_bytes,
            "other": by_tag.get("other", 0),
        }


def _single_column_schema(schema: Schema, column) -> Schema:
    """A one-column throwaway schema for encoding a single field."""
    return Schema(schema.table, (column,), (column.name,))
