"""NVM-aware copy-on-write updates engine (NVM-CoW, Section 4.2).

Three optimizations over the traditional CoW engine:

1. The copy-on-write B+tree is **non-volatile**, maintained directly
   through the allocator interface — no filesystem pages, no kernel
   crossings, no page cache duplication.
2. Tuples are persisted in slotted NVM pools and the dirty directory
   records only **non-volatile tuple pointers**, so the engine "avoids
   the transformation and copying costs incurred by the CoW engine".
3. The **master record** is an 8-byte NVM location updated with a
   single atomic durable write after the batch's new tree nodes and
   tuple copies have been synced, with memory barriers ordering the
   writes so only committed transactions are visible after restart.

Like the CoW engine there is no recovery process: after a crash the
master record points at a consistent current directory; the dirty
directory's storage is reclaimed (the paper does this asynchronously,
the simulator does it in the crash hook).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..config import EngineConfig
from ..core.schema import Schema
from ..core.tuple_codec import encode_slotted
from ..core.transaction import Transaction
from ..fault.injector import register_fault_point
from ..index.cost import NVMIndexCostModel
from ..index.cow_btree import CoWBTree, CoWNode
from ..nvm.platform import Platform
from ..sim.stats import Category
from .base import register_engine
from .cow import MASTER_SLOTS, CoWEngine, _Directory
from .slotted import FixedSlotPool, VarlenPool

register_fault_point(
    "nvm_cow.tuple_copy.after",
    "tuple copy synced into the NVM pools, pointer not yet recorded",
    engines=("nvm-cow",))
register_fault_point(
    "nvm_cow.node_sync.after",
    "epoch's new tree nodes synced, master record not yet flipped",
    engines=("nvm-cow",))
register_fault_point(
    "nvm_cow.master_flip.before_slot",
    "immediately before a directory's atomic durable master store",
    engines=("nvm-cow",))


class _TuplePools:
    """Per-table persistent slot pools for the NVM-CoW engine."""

    __slots__ = ("schema", "fixed", "varlen", "varlen_of")

    def __init__(self, schema: Schema, engine: "NVMCoWEngine") -> None:
        self.schema = schema
        self.fixed = FixedSlotPool(schema, engine.allocator,
                                   engine.memory, persistent=True)
        self.varlen = VarlenPool(engine.allocator, engine.memory,
                                 persistent=True)
        self.varlen_of: Dict[int, List[int]] = {}


@register_engine
class NVMCoWEngine(CoWEngine):
    """Copy-on-write updates over a non-volatile B+tree."""

    name = "nvm-cow"
    is_nvm_aware = True
    instant_recovery = True

    def __init__(self, platform: Platform, config: EngineConfig) -> None:
        super().__init__(platform, config)
        self._pools: Dict[str, _TuplePools] = {}
        # Master record: one atomic 8-byte slot per directory on NVM.
        self._master = self.allocator.malloc(8 * MASTER_SLOTS, tag="other")
        self.allocator.persist(self._master)
        #: directory name -> (root node, size) the durable master record
        #: points at — the crash hook's source of truth when a crash
        #: lands between the in-memory flip and the master store.
        self._durable_roots: Dict[str, Tuple[CoWNode, int]] = {}
        platform.register_crash_hook(self._crash_hook)

    # ------------------------------------------------------------------
    # Non-volatile directories + tuple pools
    # ------------------------------------------------------------------

    @property
    def _node_size(self) -> int:
        return self.config.nvm_cow_node_size \
            or self.config.cow_btree_node_size

    def _make_tree(self, schema: Optional[Schema]) -> CoWBTree:
        # Leaf entries are (key, tuple pointer) pairs, so leaves have
        # the same fanout as branches — no inlined tuple data.
        cost = NVMIndexCostModel(self.allocator, self.memory, tag="index",
                                 persistent=True)
        tree = CoWBTree(node_size=self._node_size, cost_model=cost)
        tree.cost_model = cost  # engine needs it to sync created nodes
        return tree

    def _create_table_storage(self, schema: Schema) -> None:
        super()._create_table_storage(schema)
        self._pools[schema.table] = _TuplePools(schema, self)
        for name, directory in self._dirs.items():
            self._durable_roots.setdefault(
                name, (directory.tree.current_root,
                       directory.tree.size(dirty=False)))

    def _encode_tuple(self, txn: Transaction, schema: Schema,
                      values: Dict[str, Any]) -> Any:
        """Persist the tuple copy in the slot pools and return its
        non-volatile pointer (Table 2: 'sync tuple with NVM. Store
        tuple pointer in dirty dir.')."""
        pools = self._pools[schema.table]
        addr = pools.fixed.allocate_slot()
        slot, pointers = encode_slotted(schema, values,
                                        pools.varlen.write)
        pools.fixed.write_slot(addr, slot)
        pools.varlen_of[addr] = pointers
        # One batched sync: the slot and its varlen fields, each line
        # flushed once under a single fence.
        pools.varlen.sync_many(
            pointers,
            extra_ranges=((addr, pools.fixed.slot_size),))
        self.faults.fire("nvm_cow.tuple_copy.after")
        return addr

    def _decode_tuple(self, schema: Schema, stored: Any) -> Dict[str, Any]:
        from .slotted import read_slotted_tuple
        pools = self._pools[schema.table]
        return read_slotted_tuple(schema, pools.fixed, pools.varlen,
                                  stored)

    def _release_tuple_value(self, stored: Any) -> None:
        """Free a superseded/aborted tuple copy and its varlen slots."""
        for pools in self._pools.values():
            # The address belongs to exactly one table's pool.
            if pools.fixed.owns(stored):
                for pointer in pools.varlen_of.pop(stored, []):
                    if pools.varlen.contains(pointer):
                        pools.varlen.free(pointer)
                pools.fixed.free_slot(stored)
                return

    # ------------------------------------------------------------------
    # Commit path: sync created nodes, flip master record atomically
    # ------------------------------------------------------------------

    def _persist_nodes(self, directory: _Directory,
                       created: List[CoWNode], root: CoWNode,
                       reclaimable: List[int]) -> None:
        """Durably sync this epoch's new nodes via the allocator
        interface (no filesystem pages, no copies)."""
        cost = directory.tree.cost_model
        for node in created:
            cost.sync_node(node.node_id, 0, self._node_size)
        self.faults.fire("nvm_cow.node_sync.after")
        directory.page_of[root.node_id] = (root.node_id, 1)  # identity

    def _write_master(self, dirty: List[_Directory]) -> None:
        """One atomic durable 8-byte write per directory, ordered after
        the node syncs by the sync primitive's fence."""
        for directory in dirty:
            self.faults.fire("nvm_cow.master_flip.before_slot")
            root = directory.tree.current_root
            root_alloc = directory.tree.cost_model.allocation_for(
                root.node_id)
            self.memory.atomic_durable_store_u64(
                self._master.addr + 8 * directory.slot,
                root.node_id,
                publishes=((root_alloc.addr, root_alloc.size),)
                if root_alloc is not None else None)
            # The store above is durable the moment it returns; mirror
            # it so the crash hook knows which root survived.
            self._durable_roots[directory.name] = (
                directory.tree.current_root,
                directory.tree.size(dirty=False))

    # ------------------------------------------------------------------
    # Restart events
    # ------------------------------------------------------------------

    def _crash_hook(self) -> None:
        """Platform crash: discard the dirty directory (its storage is
        reclaimed, Section 4.2) and the tuple copies created by
        transactions that never reached a durable flip.

        A crash can also land *inside* the group-commit flush — after
        the in-memory tree flip but before the atomic master store. The
        durable master record is the source of truth, so any directory
        whose in-memory root diverges from :attr:`_durable_roots` is
        rolled back to the durable root (its node objects are still
        alive: superseded nodes are only recycled after the flip)."""
        in_batch = any(directory.tree.in_batch
                       for directory in self._dirs.values())
        for directory in self._dirs.values():
            directory.tree.abort()
        rolled_back = False
        for name, directory in self._dirs.items():
            durable = self._durable_roots.get(name)
            if durable is None:
                continue
            root, size = durable
            if directory.tree.current_root is not root:
                directory.tree.install_recovered_root(root, size)
                rolled_back = True
        doomed: List[Any] = []
        for txn in self._active_txns.values():
            doomed.extend(txn.engine_state.pop("created_values", []))
            txn.engine_state.pop("superseded", None)
            txn.engine_state.pop("undo", None)
        for txn in self._pending_durable:
            created = txn.engine_state.pop("created_values", [])
            txn.engine_state.pop("superseded", None)
            txn.engine_state.pop("undo", None)
            # Pending commits whose flip became durable are live — their
            # tuple copies are referenced by the surviving tree. Doom
            # them only when no flip covered them (still in the dirty
            # version, or the flip was rolled back above).
            if rolled_back or in_batch:
                doomed.extend(created)
        for stored in doomed:
            self._release_tuple_value(stored)
        self._active_txns.clear()

    def on_crash(self) -> None:
        """The non-volatile tree and pools survive; directories never
        need reloading."""
        for directory in self._dirs.values():
            directory.loaded = True
        self._pending_durable.clear()
        self._commits_since_flush = 0

    def recover(self) -> float:
        """No recovery: a single master-record read and the engine can
        start handling transactions (Section 4.2)."""
        start_ns = self.clock.now_ns
        self.faults.fire("recovery.begin")
        with self.stats.category(Category.RECOVERY), \
                self.tracer.span("recovery.total", engine=self.name):
            with self.tracer.span("recovery.master_read"):
                self.memory.load(self._master.addr, 8 * MASTER_SLOTS)
        self.faults.fire("recovery.end")
        return self.clock.elapsed_since(start_ns) / 1e9

    def _ensure_loaded(self, table: str) -> None:
        """Non-volatile directories are always live."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def storage_breakdown(self) -> Dict[str, int]:
        by_tag = self.allocator.bytes_by_tag()
        return {
            "table": by_tag.get("table", 0),
            "index": by_tag.get("index", 0),
            "log": 0,
            "checkpoint": 0,
            "other": by_tag.get("other", 0),
        }
