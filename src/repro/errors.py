"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class NVMError(ReproError):
    """Base class for errors from the emulated NVM subsystem."""


class OutOfMemoryError(NVMError):
    """The NVM allocator could not satisfy an allocation request."""


class InvalidAddressError(NVMError):
    """An access referenced memory outside any live allocation."""


class FilesystemError(NVMError):
    """Base class for errors from the NVM-backed filesystem."""


class FileNotFoundInNVMError(FilesystemError):
    """The named file does not exist in the NVM filesystem."""


class FileExistsInNVMError(FilesystemError):
    """The named file already exists and exclusive creation was requested."""


class StorageEngineError(ReproError):
    """Base class for storage engine failures."""


class TupleNotFoundError(StorageEngineError):
    """A read, update, or delete referenced a key that does not exist."""


class DuplicateKeyError(StorageEngineError):
    """An insert supplied a primary key that already exists."""


class TransactionError(ReproError):
    """Base class for transaction lifecycle errors."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and its effects rolled back."""


class TransactionStateError(TransactionError):
    """An operation was attempted in an invalid transaction state."""


class SchemaError(ReproError):
    """A schema definition or a tuple value does not match the schema."""


class WorkloadError(ReproError):
    """A workload generator was configured inconsistently."""


class CrashedError(ReproError):
    """An operation was attempted on a crashed (not yet recovered) system."""


class SimulatedCrash(ReproError):
    """An armed fault point fired: a simulated power failure struck in
    the middle of an operation. :class:`~repro.core.database.Database`
    converts this into a full platform crash and re-raises."""

    def __init__(self, message: str, point: str = "",
                 hit: int = 0) -> None:
        super().__init__(message)
        self.point = point
        self.hit = hit


class DatabaseClosedError(ReproError):
    """An operation was attempted on a closed database."""


class SessionError(ReproError):
    """Base class for transaction-session errors (see
    :class:`repro.core.session.Session`)."""


class SessionStateError(SessionError):
    """A session verb was called in the wrong lifecycle state (e.g.
    ``commit`` with no active transaction, or ``begin`` twice)."""


class SessionClosedError(SessionError):
    """An operation was attempted on a closed session."""


class LeaseExpiredError(SessionError):
    """The server's lease reaper expired the session (its client went
    idle past the session lease): the active transaction was aborted
    and its partition lock and admission slot released. Open a new
    session to continue."""


class SweepError(ReproError):
    """One or more points of an experiment sweep failed."""


class ProtocolError(ReproError):
    """A malformed, oversized, or truncated wire-protocol frame."""


class ServerError(ReproError):
    """Base class for network-tier failures (server and client)."""


class AdmissionError(ServerError):
    """The server refused new work (admission control limit hit)."""


class RetryAfterError(AdmissionError):
    """The server shed this request under overload (the admission
    queue is full). Nothing was executed; retry after
    ``retry_after_s`` seconds (the client adds jitter)."""

    def __init__(self, message: str,
                 retry_after_s: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s

    def wire_data(self) -> dict:
        return {"retry_after_s": self.retry_after_s}

    @classmethod
    def from_wire(cls, message: str, data: dict) -> "RetryAfterError":
        try:
            retry_after_s = float(data.get("retry_after_s", 0.05))
        except (TypeError, ValueError):
            retry_after_s = 0.05
        return cls(message, retry_after_s=retry_after_s)


class ServerDisconnected(ServerError):
    """The connection to the server was lost mid-conversation."""


class DeadlineExceededError(ServerError):
    """A client call's retry loop ran out of its wall-clock deadline
    before the request succeeded."""


class CommitAmbiguousError(ServerError):
    """The fate of a tokened commit could not be resolved: the server
    already evicted the token from its bounded commit ledger, so the
    transaction may or may not have been applied. The caller must
    reconcile from data (re-read) rather than retry blindly."""


class ShardedError(ReproError):
    """A sharded (process-per-partition) execution tier failure: an
    executor process died, returned a malformed reply, or was asked to
    do something the sharded facade does not support (see
    :mod:`repro.dist.coordinator`)."""
