"""The DBMS testbed core: schema, tuples, transactions, coordination.

This package implements the lightweight testbed from Fig. 2 of the
paper: a coordinator receives transaction requests and routes them to
partitions, where they execute serially under timestamp ordering
against the active storage engine.
"""

from .database import Database
from .schema import Column, ColumnType, Schema
from .transaction import Transaction, TransactionStatus

__all__ = [
    "Column",
    "ColumnType",
    "Database",
    "Schema",
    "Transaction",
    "TransactionStatus",
]
