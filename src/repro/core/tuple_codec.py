"""Tuple serialization for the two storage layouts in the paper.

* **Slotted layout** (memory-optimized, Section 3.1): a fixed-size slot
  with one 8-byte field position per column. Integers, floats, and
  short strings are inline; longer strings live in a variable-length
  slot, with the 8-byte non-volatile pointer stored at the field's
  position.
* **Inlined layout** (HDD/SSD-optimized, Section 3.2): every field is
  stored at its full declared capacity so no random accesses are needed
  — this is the format the CoW engine keeps in its directories and the
  Log engine writes into SSTables.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Tuple

from ..errors import SchemaError
from .schema import FIELD_SLOT_SIZE, SLOT_HEADER_SIZE, ColumnType, Schema

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

#: Slot durability states (Section 4.1): after a restart, slots that
#: are allocated but not persisted transition back to unallocated.
STATE_UNALLOCATED = 0
STATE_ALLOCATED = 1
STATE_PERSISTED = 2

#: Bytes prepended to a variable-length slot (length prefix).
VARLEN_HEADER_SIZE = 4

VarlenWriter = Callable[[bytes], int]
VarlenReader = Callable[[int], bytes]


def _encode_inline_string(value: str) -> bytes:
    raw = value.encode("utf-8")
    # Length-prefixed in one byte: capacity <= 8 guarantees len <= 8,
    # but the prefix must fit too, so inline strings use 7 data bytes
    # at most; capacity-8 strings with 8 bytes spill to varlen storage.
    return bytes([len(raw)]) + raw.ljust(FIELD_SLOT_SIZE - 1, b"\x00")


def _decode_inline_string(field: bytes) -> str:
    length = field[0]
    return field[1:1 + length].decode("utf-8")


def _string_fits_inline(value: str) -> bool:
    return len(value.encode("utf-8")) <= FIELD_SLOT_SIZE - 1


def encode_slotted(schema: Schema, values: Dict[str, Any],
                   varlen_writer: VarlenWriter,
                   state: int = STATE_ALLOCATED) -> Tuple[bytes, List[int]]:
    """Encode a tuple into its fixed-size slot bytes.

    Non-inline fields are written through ``varlen_writer`` (which
    allocates a variable-length slot and returns its pointer). Returns
    ``(slot_bytes, varlen_pointers)`` so the caller can track (and
    later free) the out-of-line allocations.
    """
    schema.validate(values)
    parts = [bytes([state]) + b"\x00" * (SLOT_HEADER_SIZE - 1)]
    pointers: List[int] = []
    for column in schema.columns:
        value = values[column.name]
        if column.type is ColumnType.INT:
            parts.append(_I64.pack(value))
        elif column.type is ColumnType.FLOAT:
            parts.append(_F64.pack(float(value)))
        elif _string_fits_inline(value) and column.inline:
            parts.append(_encode_inline_string(value))
        else:
            raw = value.encode("utf-8")
            pointer = varlen_writer(_U32.pack(len(raw)) + raw)
            pointers.append(pointer)
            parts.append(_U64.pack(pointer))
    return b"".join(parts), pointers


def decode_slotted(schema: Schema, slot: bytes,
                   varlen_reader: VarlenReader) -> Dict[str, Any]:
    """Decode a fixed-size slot back into a value dict."""
    if len(slot) != schema.fixed_slot_size:
        raise SchemaError(
            f"table {schema.table}: slot is {len(slot)} bytes, "
            f"expected {schema.fixed_slot_size}")
    values: Dict[str, Any] = {}
    offset = SLOT_HEADER_SIZE
    for column in schema.columns:
        field = slot[offset:offset + FIELD_SLOT_SIZE]
        if column.type is ColumnType.INT:
            values[column.name] = _I64.unpack(field)[0]
        elif column.type is ColumnType.FLOAT:
            values[column.name] = _F64.unpack(field)[0]
        elif column.inline:
            values[column.name] = _decode_inline_string(field)
        else:
            pointer = _U64.unpack(field)[0]
            raw = varlen_reader(pointer)
            length = _U32.unpack(raw[:VARLEN_HEADER_SIZE])[0]
            values[column.name] = \
                raw[VARLEN_HEADER_SIZE:VARLEN_HEADER_SIZE + length] \
                .decode("utf-8")
        offset += FIELD_SLOT_SIZE
    return values


def slot_state(slot: bytes) -> int:
    """Read the durability state byte of a fixed-size slot."""
    return slot[0]


def encode_inlined(schema: Schema, values: Dict[str, Any]) -> bytes:
    """Encode a tuple with every field inlined at full capacity."""
    schema.validate(values)
    parts = [b"\x00" * SLOT_HEADER_SIZE]
    for column in schema.columns:
        value = values[column.name]
        if column.type is ColumnType.INT:
            parts.append(_I64.pack(value))
        elif column.type is ColumnType.FLOAT:
            parts.append(_F64.pack(float(value)))
        else:
            raw = value.encode("utf-8")
            parts.append(_U32.pack(len(raw))
                         + raw.ljust(column.capacity, b"\x00"))
    return b"".join(parts)


def decode_inlined(schema: Schema, data: bytes) -> Dict[str, Any]:
    """Decode a fully-inlined tuple."""
    values: Dict[str, Any] = {}
    offset = SLOT_HEADER_SIZE
    for column in schema.columns:
        if column.type is ColumnType.INT:
            values[column.name] = _I64.unpack_from(data, offset)[0]
            offset += FIELD_SLOT_SIZE
        elif column.type is ColumnType.FLOAT:
            values[column.name] = _F64.unpack_from(data, offset)[0]
            offset += FIELD_SLOT_SIZE
        else:
            length = _U32.unpack_from(data, offset)[0]
            start = offset + _U32.size
            values[column.name] = data[start:start + length].decode("utf-8")
            offset = start + column.capacity
    return values


def encode_fields(schema: Schema, changes: Dict[str, Any]) -> bytes:
    """Encode a subset of columns (WAL before/after images for updates
    record only the changed fields — Table 3's ``F + V`` terms)."""
    parts = [bytes([len(changes)])]
    names = schema.column_names
    for name, value in changes.items():
        column = schema.column(name)
        parts.append(bytes([names.index(name)]))
        if column.type is ColumnType.INT:
            parts.append(_I64.pack(value))
        elif column.type is ColumnType.FLOAT:
            parts.append(_F64.pack(float(value)))
        else:
            raw = value.encode("utf-8")
            parts.append(_U32.pack(len(raw)) + raw)
    return b"".join(parts)


def decode_fields(schema: Schema, data: bytes) -> Dict[str, Any]:
    """Decode a changed-fields image back into a column dict."""
    count = data[0]
    offset = 1
    values: Dict[str, Any] = {}
    for __ in range(count):
        column = schema.columns[data[offset]]
        offset += 1
        if column.type is ColumnType.INT:
            values[column.name] = _I64.unpack_from(data, offset)[0]
            offset += _I64.size
        elif column.type is ColumnType.FLOAT:
            values[column.name] = _F64.unpack_from(data, offset)[0]
            offset += _F64.size
        else:
            length = _U32.unpack_from(data, offset)[0]
            offset += _U32.size
            values[column.name] = data[offset:offset + length] \
                .decode("utf-8")
            offset += length
    return values


def encode_key(key: Any) -> bytes:
    """Encode a primary/secondary key (int, str, or tuple of those)."""
    if isinstance(key, bool):
        raise SchemaError("boolean keys are not supported")
    if isinstance(key, int):
        return b"i" + _I64.pack(key)
    if isinstance(key, str):
        raw = key.encode("utf-8")
        return b"s" + _U32.pack(len(raw)) + raw
    if isinstance(key, tuple):
        parts = [b"t", bytes([len(key)])]
        parts.extend(encode_key(part) for part in key)
        return b"".join(parts)
    raise SchemaError(f"unsupported key type {type(key)}")


def decode_key(data: bytes, offset: int = 0) -> Tuple[Any, int]:
    """Decode a key; returns (key, bytes consumed from offset)."""
    kind = data[offset:offset + 1]
    if kind == b"i":
        return _I64.unpack_from(data, offset + 1)[0], 9
    if kind == b"s":
        length = _U32.unpack_from(data, offset + 1)[0]
        start = offset + 5
        return data[start:start + length].decode("utf-8"), 5 + length
    if kind == b"t":
        count = data[offset + 1]
        consumed = 2
        parts = []
        for __ in range(count):
            part, used = decode_key(data, offset + consumed)
            parts.append(part)
            consumed += used
        return tuple(parts), consumed
    raise SchemaError(f"bad key encoding at offset {offset}")


def inlined_record_size(schema: Schema) -> int:
    """Size in bytes of one fully-inlined record."""
    size = SLOT_HEADER_SIZE
    for column in schema.columns:
        if column.type is ColumnType.STRING:
            size += _U32.size + column.capacity
        else:
            size += FIELD_SLOT_SIZE
    return size
