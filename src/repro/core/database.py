"""The public Database facade.

This is the DBMS testbed of Fig. 2: a coordinator that receives
transaction requests and routes each to its partition, where it runs
serially against the active storage engine. Typical usage::

    from repro import Database, Schema, Column, ColumnType

    db = Database(engine="nvm-inp")
    db.create_table(Schema.build(
        "accounts",
        [Column("id", ColumnType.INT),
         Column("balance", ColumnType.FLOAT)],
        primary_key=["id"]))

    def deposit(ctx, account_id, amount):
        row = ctx.get("accounts", account_id)
        ctx.update("accounts", account_id,
                   {"balance": row["balance"] + amount})

    db.execute(deposit, 7, 100.0)

    db.crash()                    # simulated power failure
    seconds = db.recover()        # engine-specific recovery
"""

from __future__ import annotations

import itertools
import zlib
from typing import Any, Dict, List, Optional, Tuple

from ..config import EngineConfig, LatencyProfile, PlatformConfig
from ..engines.base import ENGINE_NAMES
from ..errors import (ConfigError, CrashedError, DatabaseClosedError,
                      SimulatedCrash)
from ..fault.injector import FaultPlan
from ..sim.stats import Category
from .partition import Partition, StoredProcedure
from .schema import Schema
from .session import Session


def stable_partition_hash(key: Any) -> int:
    """Deterministic cross-process hash used for partition routing."""
    if isinstance(key, int):
        return key
    return zlib.crc32(repr(key).encode("utf-8"))


class Database:
    """A partitioned OLTP database on an NVM-only storage hierarchy."""

    def __init__(self, engine: str = ENGINE_NAMES.NVM_INP, *,
                 partitions: int = 1,
                 latency: Optional[LatencyProfile] = None,
                 platform_config: Optional[PlatformConfig] = None,
                 engine_config: Optional[EngineConfig] = None,
                 seed: int = 0x5EED,
                 first_partition: int = 0) -> None:
        if partitions < 1:
            raise ConfigError("need at least one partition")
        base_config = platform_config or PlatformConfig(seed=seed)
        if latency is not None:
            base_config = base_config.with_latency(latency)
        self.engine_name = engine
        self.engine_config = engine_config or EngineConfig()
        # ``first_partition`` offsets the partition ids (and thereby the
        # per-partition platform seeds): a sharded executor process
        # hosting only partition k of n builds Database(partitions=1,
        # first_partition=k) and gets bit-identical simulation state to
        # partition k of an in-process n-partition database.
        self.partitions = [
            Partition(first_partition + index, engine, base_config,
                      self.engine_config)
            for index in range(partitions)
        ]
        self._crashed = False
        self._closed = False
        self._session_ids = itertools.count(1)
        self._recovery_hooks: List[Any] = []
        # The autocommit session behind Database.execute — the one-shot
        # API is a thin wrapper over the same Session code path.
        self._autocommit = Session(self, 0, name="autocommit")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the database. Further operations raise
        :class:`~repro.errors.DatabaseClosedError`. Idempotent — the
        simulated NVM holds no host resources, so closing is a logical
        end-of-life marker that catches use-after-scope bugs."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def crashed(self) -> bool:
        """True between :meth:`crash` and a successful :meth:`recover`."""
        return self._crashed

    def session(self, name: str = "") -> Session:
        """Open an explicit transaction session — the
        begin/op/commit/abort lifecycle behind both the in-process API
        and the network tier (see :mod:`repro.core.session`)::

            with db.session() as s:
                ctx = s.begin()
                ctx.insert("kv", {"k": 1, "v": "hello"})
                s.commit()
        """
        self._require_alive()
        return Session(self, next(self._session_ids), name=name)

    def __enter__(self) -> "Database":
        if self._closed:
            raise DatabaseClosedError("database already closed")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Schema & routing
    # ------------------------------------------------------------------

    def create_table(self, schema: Schema) -> None:
        """Create the table on every partition."""
        self._require_alive()
        for partition in self.partitions:
            partition.engine.create_table(schema)

    def route(self, key: Any) -> int:
        """Partition index responsible for ``key``."""
        return stable_partition_hash(key) % len(self.partitions)

    # ------------------------------------------------------------------
    # Transaction execution
    # ------------------------------------------------------------------

    def execute(self, procedure: StoredProcedure, *args: Any,
                partition: int = 0) -> Any:
        """Run a stored procedure as one transaction on a partition
        (a one-shot wrapper over the :class:`Session` code path)."""
        session = self._autocommit
        if session.in_transaction:
            # Reentrant call from inside a stored procedure: give the
            # nested transaction its own one-shot session.
            session = Session(self, 0, name="autocommit-nested")
        return session.execute(procedure, *args, partition=partition)

    def insert(self, table: str, values: Dict[str, Any],
               partition: Optional[int] = None) -> None:
        """Single-operation insert transaction (routed by key)."""
        schema = self._schema(table)
        pid = self.route(schema.key_of(values)) \
            if partition is None else partition
        self.execute(lambda ctx: ctx.insert(table, values), partition=pid)

    def get(self, table: str, key: Any,
            partition: Optional[int] = None) -> Optional[Dict[str, Any]]:
        """Single-operation point look-up."""
        pid = self.route(key) if partition is None else partition
        return self.execute(lambda ctx: ctx.get(table, key), partition=pid)

    def update(self, table: str, key: Any, changes: Dict[str, Any],
               partition: Optional[int] = None) -> None:
        """Single-operation update transaction."""
        pid = self.route(key) if partition is None else partition
        self.execute(lambda ctx: ctx.update(table, key, changes),
                     partition=pid)

    def delete(self, table: str, key: Any,
               partition: Optional[int] = None) -> None:
        """Single-operation delete transaction."""
        pid = self.route(key) if partition is None else partition
        self.execute(lambda ctx: ctx.delete(table, key), partition=pid)

    def scan(self, table: str, lo: Any = None, hi: Any = None
             ) -> List[Tuple[Any, Dict[str, Any]]]:
        """Range scan merged across partitions (read-only)."""
        self._require_alive()
        rows: List[Tuple[Any, Dict[str, Any]]] = []
        try:
            for partition in self.partitions:
                rows.extend(partition.execute(
                    lambda ctx: list(ctx.scan(table, lo=lo, hi=hi))))
        except SimulatedCrash:
            self.crash()
            raise
        rows.sort(key=lambda pair: pair[0])
        return rows

    def flush(self) -> None:
        """Force a durable point on every partition (group commit)."""
        self._require_alive()
        try:
            for partition in self.partitions:
                partition.engine.flush_commits()
        except SimulatedCrash:
            self.crash()
            raise

    def settle(self) -> None:
        """Write back all dirty CPU-cache lines (steady state before a
        measurement window; the cost is charged outside it)."""
        self._require_alive()
        for partition in self.partitions:
            partition.platform.cache.drain()

    # ------------------------------------------------------------------
    # Restart events
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Simulated power failure across all partitions."""
        if self._closed:
            raise DatabaseClosedError("cannot crash a closed database")
        for partition in self.partitions:
            partition.platform.crash()
            partition.engine.on_crash()
        self._crashed = True

    def recover(self) -> float:
        """Run engine recovery; returns the simulated seconds until the
        database is consistent (partitions recover in parallel, so the
        slowest one determines the latency). A no-op on a database that
        never crashed. May itself raise
        :class:`~repro.errors.SimulatedCrash` under an armed fault plan
        (crash-during-recovery) — the database is crashed again and the
        caller retries."""
        if self._closed:
            raise DatabaseClosedError("cannot recover a closed database")
        if not self._crashed:
            return 0.0
        latency = 0.0
        try:
            for partition in self.partitions:
                latency = max(latency, partition.engine.recover())
        except SimulatedCrash:
            self.crash()
            raise
        self._crashed = False
        # Post-recovery hooks (e.g. two-phase-commit in-doubt
        # resolution) run once the engines are consistent; they may
        # execute transactions, and a nested simulated crash takes the
        # same crash-and-retry path the engines use.
        for hook in self._recovery_hooks:
            try:
                latency = max(latency, hook(self) or 0.0)
            except SimulatedCrash:
                self.crash()
                raise
        return latency

    def checkpoint(self) -> None:
        self._require_alive()
        try:
            for partition in self.partitions:
                partition.engine.checkpoint()
        except SimulatedCrash:
            self.crash()
            raise

    def register_recovery_hook(self, hook) -> None:
        """Register ``hook(db) -> float`` to run at the end of every
        successful :meth:`recover` (after engine recovery, before new
        transactions); its return value, simulated seconds, is folded
        into the recovery latency. Idempotent per hook object."""
        if hook not in self._recovery_hooks:
            self._recovery_hooks.append(hook)

    # ------------------------------------------------------------------
    # Distributed transactions
    # ------------------------------------------------------------------

    def execute_distributed(self, txn) -> Any:
        """Run a :class:`~repro.dist.txn.DistributedTransaction` across
        this database's partitions with two-phase commit (see
        :mod:`repro.dist.twopc`). Single-process counterpart of the
        sharded tier's cross-executor 2PC — same protocol, same
        prepare/decision records, same fault points."""
        from ..dist.twopc import execute_two_phase
        return execute_two_phase(self, txn)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def arm_faults(self, plan: Optional[FaultPlan] = None) -> None:
        """Arm every partition's fault injector — count fault-point hits
        and, with a non-empty ``plan``, crash at its triggers. Campaigns
        use single-partition databases so a plan has one interpretation;
        with several partitions each injector gets the same plan and the
        first trigger to complete crashes the whole database.

        Arming a *crashed* database is allowed — that is how a plan
        targets the upcoming recovery (crash-during-recovery)."""
        if self._closed:
            raise DatabaseClosedError(
                "cannot arm faults on a closed database")
        for partition in self.partitions:
            partition.platform.faults.arm(plan)

    def disarm_faults(self) -> None:
        for partition in self.partitions:
            partition.platform.faults.disarm()

    def fault_hits(self) -> Dict[str, int]:
        """Fault-point hit counts summed across partitions (since the
        last :meth:`arm_faults`)."""
        totals: Dict[str, int] = {}
        for partition in self.partitions:
            for point, count in partition.platform.faults.hits.items():
                totals[point] = totals.get(point, 0) + count
        return totals

    def _require_alive(self) -> None:
        if self._closed:
            raise DatabaseClosedError(
                "database closed; create a new Database to continue")
        if self._crashed:
            raise CrashedError(
                "database crashed; call recover() before new operations")

    def _schema(self, table: str) -> Schema:
        return self.partitions[0].engine._schema(table)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    def now_ns(self) -> float:
        """Simulated wall-clock: the slowest partition's clock."""
        return max(partition.now_ns for partition in self.partitions)

    @property
    def committed_txns(self) -> int:
        return sum(partition.engine.committed_txns
                   for partition in self.partitions)

    @property
    def aborted_txns(self) -> int:
        return sum(partition.engine.aborted_txns
                   for partition in self.partitions)

    def nvm_counters(self) -> Dict[str, int]:
        """Aggregated NVM loads/stores across partitions (Figs. 9-11)."""
        loads = stores = 0
        for partition in self.partitions:
            loads += partition.platform.device.loads
            stores += partition.platform.device.stores
        return {"loads": loads, "stores": stores}

    def storage_breakdown(self) -> Dict[str, int]:
        """Aggregated live NVM bytes per component (Fig. 14)."""
        totals: Dict[str, int] = {}
        for partition in self.partitions:
            for component, size in \
                    partition.engine.storage_breakdown().items():
                totals[component] = totals.get(component, 0) + size
        return totals

    def category_ns(self) -> Dict[str, float]:
        """Raw simulated nanoseconds per execution category, summed
        across partitions in partition order (the runner's measurement
        snapshots and :meth:`time_breakdown` both build on this)."""
        totals = {category.value: 0.0 for category in Category}
        for partition in self.partitions:
            stats = partition.platform.stats
            for category in Category:
                totals[category.value] += stats.category_ns(category)
        return totals

    def time_breakdown(self) -> Dict[str, float]:
        """Aggregated execution-time fractions per category (Fig. 13)."""
        totals = self.category_ns()
        grand_total = sum(totals.values())
        if grand_total == 0:
            return totals
        return {name: value / grand_total
                for name, value in totals.items()}

    def set_checkpoint_interval(self, txns: int) -> None:
        """Adjust every partition engine's checkpoint interval at
        runtime (e.g. after bulk loading)."""
        for partition in self.partitions:
            partition.engine.checkpoint_interval_txns = txns

    def __repr__(self) -> str:
        return (f"Database(engine={self.engine_name!r}, "
                f"partitions={len(self.partitions)})")
