"""Transactions and their lifecycle.

The testbed executes transactions serially per partition under
timestamp ordering (Section 3): each transaction receives a
monotonically increasing timestamp at begin, runs to completion, and
either commits or aborts. Engines attach their own undo state to the
transaction via :attr:`Transaction.engine_state`.
"""

from __future__ import annotations

import enum
from typing import Any, Dict

from ..errors import TransactionStateError


class TransactionStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"      # logically committed (may await flush)
    DURABLE = "durable"          # group-commit flushed / persisted
    ABORTED = "aborted"


class Transaction:
    """One transaction executing against a storage engine."""

    __slots__ = ("txn_id", "timestamp", "status", "engine_state",
                 "begin_ns", "commit_ns")

    def __init__(self, txn_id: int, timestamp: int) -> None:
        self.txn_id = txn_id
        self.timestamp = timestamp
        self.status = TransactionStatus.ACTIVE
        #: Engine-private undo/redo bookkeeping for this transaction.
        self.engine_state: Dict[str, Any] = {}
        self.begin_ns: float = 0.0
        self.commit_ns: float = 0.0

    def require_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise TransactionStateError(
                f"txn {self.txn_id} is {self.status.value}, not active")

    def mark_committed(self) -> None:
        self.require_active()
        self.status = TransactionStatus.COMMITTED

    def mark_durable(self) -> None:
        if self.status is not TransactionStatus.COMMITTED:
            raise TransactionStateError(
                f"txn {self.txn_id} is {self.status.value}, "
                "cannot become durable")
        self.status = TransactionStatus.DURABLE

    def mark_aborted(self) -> None:
        self.require_active()
        self.status = TransactionStatus.ABORTED

    @property
    def is_finished(self) -> bool:
        return self.status in (TransactionStatus.DURABLE,
                               TransactionStatus.ABORTED)

    def __repr__(self) -> str:
        return (f"Transaction(id={self.txn_id}, ts={self.timestamp}, "
                f"{self.status.value})")
