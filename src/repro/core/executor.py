"""Query execution context handed to stored procedures.

A stored procedure is a plain callable receiving a
:class:`TransactionContext` — the "query executor that invokes the
necessary operations on the DBMS's active storage engine" from Fig. 2.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..engines.base import StorageEngine
from ..errors import TransactionAborted
from .transaction import Transaction


class TransactionContext:
    """Engine operations bound to one running transaction.

    Each primitive operation charges the configured per-operation CPU
    cost (query executor, tuple (de)serialization) on top of whatever
    NVM traffic the engine generates.
    """

    __slots__ = ("_engine", "txn", "_op_cpu_ns", "_op_counters")

    def __init__(self, engine: StorageEngine, txn: Transaction) -> None:
        self._engine = engine
        self.txn = txn
        self._op_cpu_ns = engine.config.op_cpu_ns
        # Per-operation metric counters (None unless an observability
        # session is attached — the common case stays one check per op).
        self._op_counters = engine.platform.op_counters

    def _charge_op(self, op: str) -> None:
        self._engine.clock.advance(self._op_cpu_ns)
        if self._op_counters is not None:
            self._op_counters[op].inc()

    def insert(self, table: str, values: Dict[str, Any]) -> None:
        """Insert a tuple; raises DuplicateKeyError if the key exists."""
        self._charge_op("insert")
        self._engine.insert(self.txn, table, values)

    def update(self, table: str, key: Any,
               changes: Dict[str, Any]) -> None:
        """Update the changed columns of an existing tuple."""
        self._charge_op("update")
        self._engine.update(self.txn, table, key, changes)

    def delete(self, table: str, key: Any) -> None:
        """Delete the tuple with the given primary key."""
        self._charge_op("delete")
        self._engine.delete(self.txn, table, key)

    def get(self, table: str, key: Any) -> Optional[Dict[str, Any]]:
        """Point look-up by primary key (None if absent)."""
        self._charge_op("get")
        return self._engine.select(self.txn, table, key)

    def get_secondary(self, table: str, index_name: str,
                      key: Any) -> List[Any]:
        """Primary keys matching a secondary key."""
        self._charge_op("get_secondary")
        return self._engine.select_secondary(self.txn, table,
                                             index_name, key)

    def scan(self, table: str, lo: Any = None, hi: Any = None
             ) -> Iterator[Tuple[Any, Dict[str, Any]]]:
        """Ordered range scan over ``lo <= key < hi``."""
        if self._op_counters is not None:
            self._op_counters["scan"].inc()
        return self._engine.scan(self.txn, table, lo=lo, hi=hi)

    def abort(self, reason: str = "aborted by procedure") -> None:
        """Abort the transaction (raises :class:`TransactionAborted`)."""
        raise TransactionAborted(reason)
