"""Table schemas and column types.

The testbed follows the paper's storage layout (Section 3.1): any field
that fits in 8 bytes is stored inline in the tuple's fixed-size slot;
larger fields live in variable-length slots referenced by an 8-byte
pointer stored at the field's position.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import SchemaError

#: Bytes each field occupies in the fixed-size slot (value or pointer).
FIELD_SLOT_SIZE = 8

#: Bytes of slot header (durability state + padding to 8 bytes).
SLOT_HEADER_SIZE = 8


class ColumnType(enum.Enum):
    """Supported column types."""

    INT = "int"          # 64-bit signed integer, always inline
    FLOAT = "float"      # 64-bit IEEE double, always inline
    STRING = "string"    # UTF-8, inline iff capacity <= 8 bytes


@dataclass(frozen=True)
class Column:
    """One column: a name, a type, and (for strings) a byte capacity."""

    name: str
    type: ColumnType
    capacity: int = FIELD_SLOT_SIZE

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.capacity <= 0:
            raise SchemaError(f"column {self.name}: capacity must be > 0")
        if self.type is not ColumnType.STRING \
                and self.capacity != FIELD_SLOT_SIZE:
            raise SchemaError(
                f"column {self.name}: only STRING columns take a capacity")

    @property
    def inline(self) -> bool:
        """Whether values are stored inline in the fixed-size slot."""
        return self.type is not ColumnType.STRING \
            or self.capacity <= FIELD_SLOT_SIZE

    @property
    def inlined_size(self) -> int:
        """Bytes this column occupies in the fully-inlined layout used
        on block storage (CoW directories, SSTables): strings carry a
        4-byte length prefix plus their full capacity."""
        if self.type is ColumnType.STRING:
            return 4 + self.capacity
        return FIELD_SLOT_SIZE

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` if ``value`` does not fit."""
        if self.type is ColumnType.INT:
            if not isinstance(value, int) or isinstance(value, bool):
                raise SchemaError(
                    f"column {self.name}: expected int, got {type(value)}")
            if not -(2 ** 63) <= value < 2 ** 63:
                raise SchemaError(f"column {self.name}: int out of range")
        elif self.type is ColumnType.FLOAT:
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise SchemaError(
                    f"column {self.name}: expected float, got {type(value)}")
        else:
            if not isinstance(value, str):
                raise SchemaError(
                    f"column {self.name}: expected str, got {type(value)}")
            if len(value.encode("utf-8")) > self.capacity:
                raise SchemaError(
                    f"column {self.name}: string exceeds capacity "
                    f"{self.capacity}")


@dataclass(frozen=True)
class Schema:
    """A table schema: name, ordered columns, primary key, secondaries.

    ``primary_key`` names one or more columns; ``secondary_indexes``
    maps index name -> tuple of column names (the paper's engines
    support secondary indexes as mappings from secondary key to primary
    key, Section 3.2).
    """

    table: str
    columns: Tuple[Column, ...]
    primary_key: Tuple[str, ...]
    secondary_indexes: Dict[str, Tuple[str, ...]] = field(
        default_factory=dict)

    def __post_init__(self) -> None:
        if not self.table:
            raise SchemaError("table name must be non-empty")
        if not self.columns:
            raise SchemaError(f"table {self.table}: needs columns")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {self.table}: duplicate column names")
        if not self.primary_key:
            raise SchemaError(f"table {self.table}: needs a primary key")
        known = set(names)
        for name in self.primary_key:
            if name not in known:
                raise SchemaError(
                    f"table {self.table}: unknown primary key column {name}")
        for index_name, index_columns in self.secondary_indexes.items():
            for name in index_columns:
                if name not in known:
                    raise SchemaError(
                        f"table {self.table}: index {index_name} references "
                        f"unknown column {name}")

    @classmethod
    def build(cls, table: str, columns: Sequence[Column],
              primary_key: Sequence[str],
              secondary_indexes: Optional[Dict[str, Sequence[str]]] = None,
              ) -> "Schema":
        """Convenience constructor accepting plain sequences."""
        secondaries = {
            name: tuple(cols)
            for name, cols in (secondary_indexes or {}).items()
        }
        return cls(table, tuple(columns), tuple(primary_key), secondaries)

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"table {self.table}: no column {name}")

    @property
    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    @property
    def fixed_slot_size(self) -> int:
        """Bytes of the fixed-size slot (header + 8 bytes per field)."""
        return SLOT_HEADER_SIZE + FIELD_SLOT_SIZE * len(self.columns)

    @property
    def inlined_size(self) -> int:
        """Bytes of the fully-inlined on-block layout."""
        return SLOT_HEADER_SIZE + sum(column.inlined_size
                                      for column in self.columns)

    def key_of(self, values: Dict[str, Any]) -> Any:
        """Extract the primary key (scalar for single-column keys)."""
        if len(self.primary_key) == 1:
            return values[self.primary_key[0]]
        return tuple(values[name] for name in self.primary_key)

    def index_key_of(self, index_name: str, values: Dict[str, Any]) -> Any:
        columns = self.secondary_indexes[index_name]
        if len(columns) == 1:
            return values[columns[0]]
        return tuple(values[name] for name in columns)

    def validate(self, values: Dict[str, Any]) -> None:
        """Validate a full tuple against the schema."""
        for column in self.columns:
            if column.name not in values:
                raise SchemaError(
                    f"table {self.table}: missing value for {column.name}")
            column.validate(values[column.name])
        extra = set(values) - set(self.column_names)
        if extra:
            raise SchemaError(
                f"table {self.table}: unknown columns {sorted(extra)}")

    def validate_partial(self, changes: Dict[str, Any]) -> None:
        """Validate an update's changed columns."""
        if not changes:
            raise SchemaError(f"table {self.table}: empty update")
        for name, value in changes.items():
            self.column(name).validate(value)
        for name in self.primary_key:
            if name in changes:
                raise SchemaError(
                    f"table {self.table}: cannot update primary key "
                    f"column {name}")
