"""One database partition: its platform, engine, and serial executor.

The testbed partitions the database so that every transaction touches a
single partition, and "transactions are executed serially at each
partition based on timestamp ordering" (Section 3). Each partition is
modeled as its own emulated platform (its own simulated clock, cache,
and NVM accounting), mirroring the paper's one-worker-per-core,
one-partition-per-worker configuration: total wall-clock time for a run
is the *maximum* across partitions, and NVM load/store counts sum.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

from ..config import EngineConfig, PlatformConfig
from ..engines.base import create_engine
from ..errors import SimulatedCrash, TransactionAborted
from ..nvm.platform import Platform
from .executor import TransactionContext

StoredProcedure = Callable[..., Any]


class Partition:
    """A single-threaded partition running one storage engine."""

    def __init__(self, partition_id: int, engine_name: str,
                 platform_config: PlatformConfig,
                 engine_config: EngineConfig) -> None:
        self.partition_id = partition_id
        # Each partition gets an independent RNG stream for its crash
        # lottery while staying fully deterministic.
        self.platform = Platform(replace(
            platform_config,
            seed=platform_config.seed * 1000003 + partition_id))
        self.engine = create_engine(engine_name, self.platform,
                                    engine_config)

    def begin(self) -> TransactionContext:
        """Start a transaction; returns its live execution context."""
        txn = self.engine.begin()
        # Transaction begin/commit bookkeeping is compute, not NVM.
        self.platform.clock.advance(self.engine.config.txn_cpu_ns)
        return TransactionContext(self.engine, txn)

    def commit(self, context: TransactionContext) -> None:
        """Commit the context's transaction (engine commit + per-txn
        latency observation + telemetry probe)."""
        txn = context.txn
        self.engine.commit(txn)
        histogram = self.platform.txn_latency
        if histogram is not None:
            histogram.observe(txn.commit_ns - txn.begin_ns)
        probe = self.platform.txn_probe
        if probe is not None:
            probe()

    def abort(self, context: TransactionContext) -> None:
        """Abort the context's transaction and roll back its effects."""
        self.engine.abort(context.txn)

    def execute(self, procedure: StoredProcedure, *args: Any) -> Any:
        """Run a stored procedure in its own transaction.

        Commits on normal return; aborts (and re-raises) on
        :class:`TransactionAborted` or any other exception.
        """
        context = self.begin()
        try:
            result = procedure(context, *args)
        except SimulatedCrash:
            # Power failure, not an abort: the engine must not run its
            # rollback path — the platform crash freezes state as-is and
            # recovery decides the transaction's fate.
            raise
        except TransactionAborted:
            self.abort(context)
            raise
        except Exception:
            self.abort(context)
            raise
        self.commit(context)
        return result

    @property
    def now_ns(self) -> float:
        return self.platform.clock.now_ns
