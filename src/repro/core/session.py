"""Explicit transaction sessions over the database.

A :class:`Session` is the unit of client state in the testbed's
coordinator: it owns at most one active transaction at a time and walks
a small lifecycle state machine::

    open ──begin()──► active-txn ──commit()/abort()──► open
      │                                                  │
      └───────────────────close()◄───────────────────────┘

The same session object drives the database in-process (``with
db.session() as s: ...``) and backs one remote connection in the
network tier (``repro.server``). :meth:`Database.execute
<repro.core.database.Database.execute>` is a thin one-shot wrapper over
:meth:`Session.execute`, so both paths run the exact same begin /
procedure / commit sequence against the partition executor.

Error taxonomy: a closed database raises
:class:`~repro.errors.DatabaseClosedError`, a crashed (not yet
recovered) database raises :class:`~repro.errors.CrashedError`, a verb
called in the wrong session state raises
:class:`~repro.errors.SessionStateError`, and anything on a closed
session raises :class:`~repro.errors.SessionClosedError`. A
:class:`~repro.errors.SimulatedCrash` escaping a session verb has
already crashed the whole database (power failure), exactly like the
one-shot path.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Tuple

from ..errors import (CrashedError, LeaseExpiredError,
                      SessionClosedError, SessionStateError,
                      SimulatedCrash, TransactionAborted)
from .executor import TransactionContext
from .partition import Partition, StoredProcedure

__all__ = ["Session", "SessionState"]


class SessionState(enum.Enum):
    """Lifecycle states of a :class:`Session` (see module docstring)."""

    OPEN = "open"
    ACTIVE = "active-txn"
    CLOSED = "closed"


class Session:
    """One client's transaction stream against a database.

    Sessions are handed out by :meth:`Database.session
    <repro.core.database.Database.session>`; each carries a database-
    unique ``session_id``. They are single-threaded objects — the
    testbed executes transactions serially per partition, and the
    network tier serializes all sessions onto the event loop.
    """

    __slots__ = ("database", "session_id", "name", "_state", "_context",
                 "_partition", "txns_committed", "txns_aborted",
                 "_expired_reason")

    def __init__(self, database, session_id: int,
                 name: str = "") -> None:
        self.database = database
        self.session_id = session_id
        self.name = name or f"session-{session_id}"
        self._state = SessionState.OPEN
        self._context: Optional[TransactionContext] = None
        self._partition: Optional[Partition] = None
        self.txns_committed = 0
        self.txns_aborted = 0
        self._expired_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------

    @property
    def state(self) -> SessionState:
        return self._state

    @property
    def in_transaction(self) -> bool:
        return self._state is SessionState.ACTIVE

    @property
    def closed(self) -> bool:
        return self._state is SessionState.CLOSED

    @property
    def partition_id(self) -> Optional[int]:
        """Partition of the active transaction (None when idle)."""
        if self._partition is None:
            return None
        return self._partition.partition_id

    @property
    def context(self) -> Optional[TransactionContext]:
        """The active transaction's context (None when idle)."""
        return self._context

    @property
    def expired(self) -> bool:
        """True when the session was closed by :meth:`expire` (e.g.
        the server's lease reaper)."""
        return self._expired_reason is not None

    def _require_open(self) -> None:
        if self._expired_reason is not None:
            raise LeaseExpiredError(
                f"{self.name} expired: {self._expired_reason}")
        if self._state is SessionState.CLOSED:
            raise SessionClosedError(
                f"{self.name} is closed; open a new session")
        if self._state is SessionState.ACTIVE:
            raise SessionStateError(
                f"{self.name} already has an active transaction; "
                "commit() or abort() it first")

    def _require_active(self) -> None:
        if self._expired_reason is not None:
            raise LeaseExpiredError(
                f"{self.name} expired: {self._expired_reason}")
        if self._state is SessionState.CLOSED:
            raise SessionClosedError(
                f"{self.name} is closed; open a new session")
        if self._state is not SessionState.ACTIVE:
            raise SessionStateError(
                f"{self.name} has no active transaction; call begin()")

    def _finish_txn(self) -> None:
        self._context = None
        self._partition = None
        if self._state is SessionState.ACTIVE:
            self._state = SessionState.OPEN

    def invalidate(self, reason: str = "database crashed") -> bool:
        """Drop the active transaction without touching the engine —
        used when the platform crashed underneath the session (the
        engine's volatile state is gone; recovery decides the
        transaction's fate). Returns True if a transaction was open."""
        had_txn = self._state is SessionState.ACTIVE
        if had_txn:
            self.txns_aborted += 1
        self._finish_txn()
        return had_txn

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------

    def begin(self, partition: int = 0) -> TransactionContext:
        """Start a transaction on ``partition``; returns the live
        :class:`~repro.core.executor.TransactionContext` so in-process
        callers can drive engine operations with zero per-op session
        overhead."""
        self._require_open()
        self.database._require_alive()
        part = self.database.partitions[partition]
        try:
            context = part.begin()
        except SimulatedCrash:
            self.database.crash()
            raise
        self._context = context
        self._partition = part
        self._state = SessionState.ACTIVE
        return context

    def commit(self) -> int:
        """Commit the active transaction; returns its transaction id.
        Durability may still await the engine's next group-commit
        flush (see :meth:`flush`)."""
        self._require_active()
        context = self._context
        try:
            self._partition.commit(context)
        except SimulatedCrash:
            self._finish_txn()
            self.database.crash()
            raise
        self._finish_txn()
        self.txns_committed += 1
        return context.txn.txn_id

    def abort(self) -> int:
        """Abort the active transaction and roll back its effects;
        returns its transaction id."""
        self._require_active()
        context = self._context
        try:
            self._partition.abort(context)
        except SimulatedCrash:
            self._finish_txn()
            self.database.crash()
            raise
        self._finish_txn()
        self.txns_aborted += 1
        return context.txn.txn_id

    def execute(self, procedure: StoredProcedure, *args: Any,
                partition: int = 0) -> Any:
        """One-shot: run a stored procedure as a single transaction.

        Commits on normal return; aborts (and re-raises) on
        :class:`~repro.errors.TransactionAborted` or any other
        exception. This is the code path behind
        :meth:`Database.execute
        <repro.core.database.Database.execute>`."""
        context = self.begin(partition=partition)
        try:
            result = procedure(context, *args)
        except SimulatedCrash:
            # Power failure, not an abort: the engine must not run its
            # rollback path — recovery decides the transaction's fate.
            self._finish_txn()
            self.database.crash()
            raise
        except TransactionAborted:
            self.abort()
            raise
        except Exception:
            self.abort()
            raise
        self.commit()
        return result

    # ------------------------------------------------------------------
    # In-transaction operations (server-facing verb surface)
    # ------------------------------------------------------------------

    def _active_context(self) -> TransactionContext:
        self._require_active()
        return self._context

    def _op(self, operation, *args: Any) -> Any:
        """Run one engine operation of the active transaction,
        converting a mid-operation power failure exactly like the
        one-shot path does."""
        context = self._active_context()
        try:
            return operation(context, *args)
        except SimulatedCrash:
            self._finish_txn()
            self.database.crash()
            raise

    def insert(self, table: str, values: Dict[str, Any]) -> None:
        self._op(TransactionContext.insert, table, values)

    def update(self, table: str, key: Any,
               changes: Dict[str, Any]) -> None:
        self._op(TransactionContext.update, table, key, changes)

    def delete(self, table: str, key: Any) -> None:
        self._op(TransactionContext.delete, table, key)

    def get(self, table: str, key: Any) -> Optional[Dict[str, Any]]:
        return self._op(TransactionContext.get, table, key)

    def get_secondary(self, table: str, index_name: str,
                      key: Any) -> List[Any]:
        return self._op(TransactionContext.get_secondary, table,
                        index_name, key)

    def scan(self, table: str, lo: Any = None, hi: Any = None
             ) -> List[Tuple[Any, Dict[str, Any]]]:
        """Materialized range scan inside the active transaction (the
        remote tier cannot stream a live iterator)."""
        return self._op(
            lambda context: list(context.scan(table, lo=lo, hi=hi)))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the session. An active transaction is aborted first
        (best effort — a crashed or closed database just drops it).
        Idempotent."""
        if self._state is SessionState.CLOSED:
            return
        if self._state is SessionState.ACTIVE:
            if self.database.closed or self.database.crashed:
                self.invalidate()
            else:
                try:
                    self.abort()
                except CrashedError:
                    self.invalidate()
        self._state = SessionState.CLOSED

    def expire(self, reason: str) -> None:
        """Close the session *with cause* — the server's lease reaper
        uses this so later verbs raise
        :class:`~repro.errors.LeaseExpiredError` (telling the client
        its work was revoked, not merely that the handle is stale)
        instead of :class:`~repro.errors.SessionClosedError`."""
        self.close()
        if self._expired_reason is None:
            self._expired_reason = reason

    def __enter__(self) -> "Session":
        if self._state is SessionState.CLOSED:
            raise SessionClosedError(f"{self.name} is already closed")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Session(id={self.session_id}, name={self.name!r}, "
                f"state={self._state.value})")
