"""Figs. 9 & 10 — NVM loads and stores while running YCSB.

The device counters play the role of the paper's perf hardware
counters (Section 5.3). Expected shapes: higher skew cuts loads for
every engine (hot-tuple caching); on the write-heavy mixture the CoW
engine performs the most stores (dirty-directory copies) and NVM-InP
performs fewer stores than InP (pointer-sized log entries).
"""

from repro.analysis.tables import format_table
from repro.harness.experiments import ycsb_throughput


def _run(scale):
    return ycsb_throughput(
        "dram", scale, mixtures=("read-only", "balanced",
                                 "write-heavy"))


def test_fig09_10_ycsb_loads_and_stores(benchmark, report, scale):
    __, __rows, results = benchmark.pedantic(
        _run, args=(scale,), rounds=1, iterations=1)
    mixtures = ("read-only", "balanced", "write-heavy")
    engines = sorted({key[0] for key in results})

    def table(metric):
        headers = ["engine", *[f"{mixture}/{skew}"
                               for mixture in mixtures
                               for skew in ("low", "high")]]
        rows = []
        for engine in ("inp", "cow", "log", "nvm-inp", "nvm-cow",
                       "nvm-log"):
            row = [engine]
            for mixture in mixtures:
                for skew in ("low", "high"):
                    result = results[(engine, mixture, skew)]
                    row.append(result.nvm_loads if metric == "loads"
                               else result.nvm_stores)
            rows.append(row)
        return headers, rows

    load_headers, load_rows = table("loads")
    store_headers, store_rows = table("stores")
    report("fig09 ycsb loads",
           format_table(load_headers, load_rows,
                        title="Fig. 9 — YCSB NVM loads (cachelines)"))
    report("fig10 ycsb stores",
           format_table(store_headers, store_rows,
                        title="Fig. 10 — YCSB NVM stores (cachelines)"))

    # Skew reduces loads (caching of hot tuples) — except for the
    # log-structured engines, where the paper notes the gains are
    # "minimal due to tuple coalescing costs".
    for engine in engines:
        for mixture in mixtures:
            low = results[(engine, mixture, "low")].nvm_loads
            high = results[(engine, mixture, "high")].nvm_loads
            if engine in ("log", "nvm-log"):
                # Skew concentrates updates on hot keys, lengthening
                # their entry chains — coalescing can cost slightly
                # *more* loads, which is why the paper calls the Log
                # engines' skew gains "minimal".
                assert high <= low * 1.25, (engine, mixture)
            else:
                assert high < low, (engine, mixture)
    # The reduction is pronounced for the in-place engines.
    for engine in ("inp", "nvm-inp"):
        assert results[(engine, "read-only", "high")].nvm_loads \
            < 0.8 * results[(engine, "read-only", "low")].nvm_loads
    # Write-heavy: CoW performs the most stores; NVM-InP fewer than InP.
    stores = {engine: results[(engine, "write-heavy", "low")].nvm_stores
              for engine in engines}
    assert stores["cow"] == max(stores.values())
    assert stores["nvm-inp"] < stores["inp"]
    assert stores["nvm-cow"] < stores["cow"]
    # Read-only performs no measurable stores.
    for engine in engines:
        assert results[(engine, "read-only", "low")].nvm_stores \
            < results[(engine, "write-heavy", "low")].nvm_stores * 0.1 \
            + 100
