"""Ablation — CLFLUSH vs CLWB sync primitive (Appendix C).

The paper argues the proposed CLWB instruction will benefit NVM-aware
engines because, unlike CLFLUSH, it "can retain a copy of the line in
the cache hierarchy in exclusive state, thereby reducing the
possibility of cache misses during subsequent accesses". This ablation
swaps the sync primitive's flush instruction and measures the
difference on a write-heavy workload where synced tuples are re-read.
"""

from repro.analysis.tables import format_table
from repro.config import CacheConfig, PlatformConfig
from repro.core.database import Database
from repro.engines.base import ENGINE_NAMES
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


def _run(scale):
    rows = []
    for engine in ENGINE_NAMES.NVM_AWARE:
        measures = {}
        for use_clwb in (False, True):
            platform_config = PlatformConfig(
                cache=CacheConfig(capacity_bytes=scale.cache_bytes,
                                  use_clwb=use_clwb),
                seed=31)
            workload = YCSBWorkload(YCSBConfig(
                num_tuples=scale.ycsb_tuples, mixture="write-heavy",
                skew="high", seed=31))
            db = Database(engine=engine,
                          platform_config=platform_config,
                          engine_config=scale.engine_config(), seed=31)
            workload.load(db)
            db.settle()
            start_ns = db.now_ns
            loads0 = db.nvm_counters()["loads"]
            workload.run(db, scale.ycsb_txns)
            elapsed = (db.now_ns - start_ns) / 1e9
            measures[use_clwb] = (scale.ycsb_txns / elapsed,
                                  db.nvm_counters()["loads"] - loads0)
        rows.append([engine,
                     measures[False][0], measures[True][0],
                     measures[True][0] / measures[False][0],
                     measures[False][1], measures[True][1]])
    headers = ["engine", "CLFLUSH txn/s", "CLWB txn/s", "speedup",
               "CLFLUSH loads", "CLWB loads"]
    return headers, rows


def test_ablation_clwb_sync(benchmark, report, scale):
    headers, rows = benchmark.pedantic(
        _run, args=(scale,), rounds=1, iterations=1)
    report("ablation clwb",
           format_table(headers, rows,
                        title="Ablation — CLFLUSH vs CLWB sync "
                              "(YCSB write-heavy/high)"))
    for row in rows:
        engine, __, __c, speedup, flush_loads, clwb_loads = row
        # CLWB never hurts, and reduces NVM loads (no invalidation).
        assert speedup >= 0.98, engine
        assert clwb_loads <= flush_loads, engine
    # At least one engine sees a tangible benefit.
    assert max(row[3] for row in rows) > 1.02
