"""Fig. 5 — YCSB throughput at the DRAM latency configuration (160 ns).

Expected shapes (Section 5.2): on the read-only mixture InP and
NVM-InP are equivalent (both read through the allocator interface),
NVM-CoW is ~2x CoW, and the Log engine is the slowest. On the
write-heavy mixture every NVM-aware engine beats its traditional
counterpart, with NVM-CoW showing the largest speedup over CoW, and
the CoW engine is the slowest overall.
"""

from repro.analysis.tables import format_table
from repro.harness.experiments import ycsb_throughput


def _col(headers, rows, engine, column):
    index = headers.index(column)
    for row in rows:
        if row[0] == engine:
            return row[index]
    raise KeyError(engine)


def test_fig05_ycsb_dram_latency(benchmark, report, scale):
    headers, rows, __ = benchmark.pedantic(
        ycsb_throughput, args=("dram", scale), rounds=1, iterations=1)
    report("fig05 ycsb dram",
           format_table(headers, rows,
                        title="Fig. 5 — YCSB throughput, DRAM latency "
                              "(txn/s)"))
    # Read-only: InP ~= NVM-InP; Log slowest; NVM-CoW ~2x CoW.
    ro = "read-only/low"
    assert abs(_col(headers, rows, "inp", ro)
               - _col(headers, rows, "nvm-inp", ro)) \
        < 0.15 * _col(headers, rows, "inp", ro)
    for engine in ("inp", "cow", "nvm-inp", "nvm-cow", "nvm-log"):
        assert _col(headers, rows, engine, ro) \
            > _col(headers, rows, "log", ro)
    ratio = _col(headers, rows, "nvm-cow", ro) \
        / _col(headers, rows, "cow", ro)
    assert 1.3 < ratio < 3.5
    # Write-heavy: NVM-aware engines beat their counterparts; CoW is
    # the slowest engine; NVM-InP is the fastest.
    wh = "write-heavy/low"
    for traditional, nvm in (("inp", "nvm-inp"), ("cow", "nvm-cow"),
                             ("log", "nvm-log")):
        assert _col(headers, rows, nvm, wh) \
            > _col(headers, rows, traditional, wh)
    for engine in ("inp", "nvm-inp", "nvm-cow", "nvm-log"):
        assert _col(headers, rows, engine, wh) \
            > _col(headers, rows, "cow", wh)
    # Log vs CoW is the paper's closest pairing (1.6-4.1x on the
    # balanced mixture); at simulator scale compaction timing adds
    # noise on write-heavy, so assert the balanced ordering strictly
    # and write-heavy within noise.
    assert _col(headers, rows, "log", "balanced/low") \
        > _col(headers, rows, "cow", "balanced/low")
    assert _col(headers, rows, "log", wh) \
        > 0.7 * _col(headers, rows, "cow", wh)
    assert max(row[headers.index(wh)] for row in rows) \
        == _col(headers, rows, "nvm-inp", wh)
    # Higher skew helps (caching benefits).
    for engine in ("inp", "nvm-inp"):
        assert _col(headers, rows, engine, "read-only/high") \
            > _col(headers, rows, engine, "read-only/low")
