"""Extension — hybrid DRAM + NVM storage hierarchy (Appendix D).

The paper's future work: "A hybrid DRAM and NVM storage hierarchy is a
viable alternative, particularly in case of high NVM latency
technologies and analytical workloads." This extension places the InP
engine's volatile indexes on a DRAM tier and measures the benefit
against both the NVM-only InP and NVM-InP across latency profiles —
the hybrid advantage should grow with NVM latency.
"""

from repro.analysis.tables import format_table
from repro.config import CacheConfig, PlatformConfig
from repro.core.database import Database
from repro.harness.experiments import LATENCIES
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

ENGINES = ("inp", "hybrid-inp", "nvm-inp")


def _run(scale):
    rows = []
    for engine in ENGINES:
        row = [engine]
        for latency_name in ("dram", "low-nvm", "high-nvm"):
            platform_config = PlatformConfig(
                latency=LATENCIES[latency_name](),
                cache=CacheConfig(capacity_bytes=scale.cache_bytes),
                dram_capacity_bytes=32 * 1024 * 1024, seed=31)
            workload = YCSBWorkload(YCSBConfig(
                num_tuples=scale.ycsb_tuples, mixture="read-heavy",
                skew="low", seed=31))
            db = Database(engine=engine,
                          platform_config=platform_config,
                          engine_config=scale.engine_config(), seed=31)
            workload.load(db)
            db.settle()
            start_ns = db.now_ns
            workload.run(db, scale.ycsb_txns)
            row.append(scale.ycsb_txns / ((db.now_ns - start_ns) / 1e9))
        rows.append(row)
    return ["engine", "dram", "low-nvm", "high-nvm"], rows


def test_extension_hybrid_hierarchy(benchmark, report, scale):
    headers, rows = benchmark.pedantic(
        _run, args=(scale,), rounds=1, iterations=1)
    report("extension hybrid",
           format_table(headers, rows,
                        title="Extension — hybrid DRAM+NVM hierarchy "
                              "(YCSB read-heavy/low, txn/s)"))
    by_engine = {row[0]: row[1:] for row in rows}
    # DRAM-resident indexes help, and help more at higher NVM latency.
    gain_low = by_engine["hybrid-inp"][0] / by_engine["inp"][0]
    gain_high = by_engine["hybrid-inp"][2] / by_engine["inp"][2]
    assert gain_high > 1.0
    assert gain_high >= gain_low * 0.95
