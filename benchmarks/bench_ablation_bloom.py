"""Ablation — Bloom filters in the log-structured engines.

Section 3.3: the Log engine builds a Bloom filter per run "to quickly
determine at runtime whether it contains entries associated with a
tuple to avoid unnecessary index look-ups". This ablation compares the
default 10 bits/key filters against degenerate 1-bit/1-hash filters
(which saturate and pass everything) on a read-heavy workload over a
multi-run LSM tree.
"""

from repro.analysis.tables import format_table
from repro.harness.runner import run
from repro.harness.spec import ExperimentSpec


def _run(scale):
    rows = []
    for engine in ("log", "nvm-log"):
        measures = {}
        for label, bits, hashes in (("bloom", 10, 3),
                                    ("saturated", 1, 1)):
            result = run(ExperimentSpec.ycsb(
                engine, "read-heavy", "low",
                num_tuples=scale.ycsb_tuples,
                num_txns=scale.ycsb_txns,
                engine_config=scale.engine_config(
                    bloom_bits_per_key=bits, bloom_hashes=hashes,
                    memtable_threshold_bytes=16 * 1024),
                cache_bytes=scale.cache_bytes))
            measures[label] = result
        rows.append([engine,
                     measures["bloom"].throughput,
                     measures["saturated"].throughput,
                     measures["bloom"].nvm_loads,
                     measures["saturated"].nvm_loads])
    headers = ["engine", "bloom txn/s", "saturated txn/s",
               "bloom loads", "saturated loads"]
    return headers, rows


def test_ablation_bloom_filters(benchmark, report, scale):
    headers, rows = benchmark.pedantic(
        _run, args=(scale,), rounds=1, iterations=1)
    report("ablation bloom",
           format_table(headers, rows,
                        title="Ablation — Bloom filters "
                              "(YCSB read-heavy/low)"))
    for row in rows:
        engine, with_bloom, saturated, __, __l = row
        assert with_bloom >= saturated * 0.95, engine
