"""Fig. 6 — YCSB throughput at the low NVM latency configuration (2x).

Same series as Fig. 5 with 320 ns NVM reads. The engine ordering is
preserved; absolute throughput drops relative to the DRAM profile.
"""

from repro.analysis.tables import format_table
from repro.harness.experiments import ycsb_throughput


def test_fig06_ycsb_low_nvm_latency(benchmark, report, scale):
    headers, rows, __ = benchmark.pedantic(
        ycsb_throughput, args=("low-nvm", scale), rounds=1, iterations=1)
    report("fig06 ycsb low-nvm",
           format_table(headers, rows,
                        title="Fig. 6 — YCSB throughput, low NVM "
                              "latency 2x (txn/s)"))
    index = headers.index("write-heavy/low")
    by_engine = {row[0]: row[index] for row in rows}
    assert by_engine["nvm-inp"] > by_engine["inp"]
    assert by_engine["nvm-cow"] > by_engine["cow"]
    assert by_engine["nvm-log"] > by_engine["log"]
    assert max(by_engine.values()) == by_engine["nvm-inp"]
