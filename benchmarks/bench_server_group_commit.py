"""Server-side group commit — the network tier's acceptance benchmark.

A loopback server under a closed-loop multi-client load: with >= 8
concurrent sessions, batching durability across sessions must cut the
simulated durability cost (WAL fsyncs + flush+fence trains) per
committed transaction versus flushing every commit, and the saving
must grow with client count as batches fill (``docs/server.md``).

Engines: ``inp`` (WAL fsync per durable point — the engine group
commit was built for) and ``nvm-inp`` (persists at the logical commit;
batching must at least never hurt its durability accounting).
"""

from repro.analysis.tables import format_table
from repro.harness.closed_loop import ClosedLoopConfig, run_loopback
from repro.server import GroupCommitConfig, ServerConfig

CLIENTS = (1, 4, 8)


def _workload(clients: int) -> ClosedLoopConfig:
    return ClosedLoopConfig(clients=clients, txns_per_client=25,
                            ops_per_txn=2, keys=256, seed=42)


def _server(engine: str, enabled: bool) -> ServerConfig:
    return ServerConfig(
        engine=engine,
        group_commit=GroupCommitConfig(enabled=enabled, batch_size=16,
                                       max_hold_ns=500_000.0,
                                       max_hold_wall_s=0.002))


def _measure(engine: str):
    rows = []
    for clients in CLIENTS:
        off = run_loopback(_server(engine, False), _workload(clients))
        on = run_loopback(_server(engine, True), _workload(clients))
        rows.append([clients,
                     f"{off.rounds_per_txn:.3f}",
                     f"{on.rounds_per_txn:.3f}",
                     f"{on.mean_batch:.2f}", on.max_batch,
                     on.committed, on.failed])
    headers = ["clients", "rounds/txn off", "rounds/txn on",
               "mean batch", "max batch", "committed", "failed"]
    return headers, rows


def test_server_group_commit_inp(benchmark, report):
    headers, rows = benchmark.pedantic(
        _measure, args=("inp",), rounds=1, iterations=1)
    report("server group commit inp",
           format_table(headers, rows,
                        title="Server group commit — inp (WAL fsync)"))
    by_clients = {row[0]: row for row in rows}
    for clients, row in by_clients.items():
        assert row[6] == 0                      # no failed txns
        assert row[5] == clients * 25           # all committed
        assert float(row[1]) >= 1.0             # unbatched: 1 round/txn
    # The acceptance criterion: at 8 concurrent sessions, group commit
    # reduces durability rounds per committed transaction.
    eight = by_clients[8]
    assert float(eight[2]) < float(eight[1]), \
        "group commit did not reduce durability cost at 8 clients"
    assert float(eight[3]) > 1.5                # batches actually form
    # And the saving grows with concurrency.
    assert float(by_clients[8][2]) < float(by_clients[1][2])


def test_server_group_commit_nvm_inp(benchmark, report):
    headers, rows = benchmark.pedantic(
        _measure, args=("nvm-inp",), rounds=1, iterations=1)
    report("server group commit nvm-inp",
           format_table(headers, rows,
                        title="Server group commit — nvm-inp "
                              "(persists at logical commit)"))
    for row in rows:
        assert row[6] == 0
        # The NVM-aware engine's durable point is (near) free either
        # way — batching must never increase its durability cost.
        assert float(row[2]) <= float(row[1])
