"""Fig. 12 — recovery latency vs number of transactions to recover.

Expected shape (Section 5.4): InP and Log recovery latency grows
linearly with the transaction count (redo since the last checkpoint /
MemTable flush); NVM-InP and NVM-Log are near-constant (undo-only) and
always well under the traditional engines at scale. CoW and NVM-CoW
are omitted — they never need to recover.
"""

from repro.analysis.tables import format_table
from repro.harness.experiments import recovery_latency


def test_fig12a_ycsb_recovery(benchmark, report, scale):
    headers, rows = benchmark.pedantic(
        recovery_latency, args=("ycsb", scale), rounds=1, iterations=1)
    report("fig12a recovery ycsb",
           format_table(headers, rows,
                        title="Fig. 12a — YCSB recovery latency (ms)"))
    by_engine = {row[0]: row[1:] for row in rows}
    counts = scale.recovery_txn_counts
    span = counts[-1] / counts[0]
    # Traditional engines grow with history (the constant
    # checkpoint-reload term keeps the measured slope a bit under the
    # pure replay slope at simulator scale)...
    for engine in ("inp", "log"):
        growth = by_engine[engine][-1] / by_engine[engine][0]
        assert growth > span * 0.2, f"{engine} growth {growth:.1f}"
    # ...NVM-aware engines stay flat...
    for engine in ("nvm-inp", "nvm-log"):
        growth = by_engine[engine][-1] / max(by_engine[engine][0], 1e-9)
        assert growth < 3.0, f"{engine} growth {growth:.1f}"
    # ...and are much faster at the largest history.
    assert by_engine["inp"][-1] > 10 * by_engine["nvm-inp"][-1]
    assert by_engine["log"][-1] > 10 * by_engine["nvm-log"][-1]


def test_fig12b_tpcc_recovery(benchmark, report, scale):
    headers, rows = benchmark.pedantic(
        recovery_latency, args=("tpcc", scale), rounds=1, iterations=1)
    report("fig12b recovery tpcc",
           format_table(headers, rows,
                        title="Fig. 12b — TPC-C recovery latency (ms)"))
    by_engine = {row[0]: row[1:] for row in rows}
    assert by_engine["inp"][-1] > by_engine["nvm-inp"][-1]
    assert by_engine["log"][-1] > by_engine["nvm-log"][-1]
