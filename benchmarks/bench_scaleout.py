"""Scale-out — wall-clock throughput vs executor processes.

Not a paper figure: the paper's evaluation is single-node H-Store
style. This benchmark measures what the shared-nothing tier
(``repro.dist``, see ``docs/scaleout.md``) adds on top — the same
simulated workload executed serially (every partition in one process)
and sharded (one executor process per partition), at increasing
partition counts. Simulated results are byte-identical between the
two modes (enforced by ``tests/dist``); the only thing sharding can
change is how fast real cores chew through the simulation, so the
numbers here are **wall-clock** and host-dependent.

The speedup assertion is gated on the host actually having cores to
scale onto: a single-core container runs every executor on the same
CPU, where the IPC overhead is all cost and no benefit (the committed
results record the host's core count for exactly this reason).

The TPC-C sweep adds remote new-order fractions: sharded runs execute
remote stock updates as genuine two-phase commits, so the throughput
delta between 0% and 10% remote is the measured 2PC round-trip cost.
"""

import os

from repro.analysis.tables import format_table
from repro.harness.experiments import sweep_workers

_CORES = os.cpu_count() or 1


def test_scaleout_ycsb(benchmark, report, scale):
    headers, rows, results = benchmark.pedantic(
        sweep_workers, args=((1, 2, 4), "ycsb", scale),
        rounds=1, iterations=1)
    report("scaleout ycsb",
           format_table(
               headers,
               [[row[0], *[f"{v:,.0f}" for v in row[1:3]],
                 f"{row[3]:.2f}x"] for row in rows],
               title=f"Scale-out — YCSB wall-clock throughput "
                     f"({_CORES} host core(s))"))
    for row in rows:
        assert row[1] > 0 and row[2] > 0
    # The scale-out claim needs real cores to scale onto; on a
    # smaller host the sharded numbers are dominated by IPC overhead
    # and only the (committed) curve itself is informative.
    if _CORES >= 4:
        by_workers = {row[0]: row for row in rows}
        assert by_workers[4][3] >= 2.0, \
            f"expected >=2x at 4 workers, got {by_workers[4][3]:.2f}x"


def test_scaleout_tpcc_remote(benchmark, report, scale):
    def run_points():
        rows = []
        for fraction in (0.0, 0.01, 0.10):
            __, srows, __results = sweep_workers(
                (4,), "tpcc", scale,
                remote_order_fraction=fraction,
                num_txns=scale.tpcc_txns * 2)
            rows.append([f"{fraction:.0%}", *srows[0][1:]])
        return (["remote new-order", "serial txn/s",
                 "sharded txn/s", "speedup"], rows)

    headers, rows = benchmark.pedantic(run_points, rounds=1,
                                       iterations=1)
    report("scaleout tpcc remote",
           format_table(
               headers,
               [[row[0], *[f"{v:,.0f}" for v in row[1:3]],
                 f"{row[3]:.2f}x"] for row in rows],
               title=f"Scale-out — TPC-C, 4 workers, 2PC cost by "
                     f"remote fraction ({_CORES} host core(s))"))
    for row in rows:
        assert row[1] > 0 and row[2] > 0
