"""Table 1 — NVM technology characteristics, plus the device-wear
motivation: halving stores doubles effective lifetime for
endurance-limited technologies (PCM, RRAM)."""

from repro.analysis.tables import format_table
from repro.harness.experiments import table1_technologies
from repro.nvm.constants import TECHNOLOGIES, wear_fraction


def test_table1_technologies(benchmark, report):
    headers, rows = benchmark.pedantic(
        table1_technologies, rounds=1, iterations=1)
    report("table1 technologies",
           format_table(headers, rows,
                        title="Table 1 — NVM technology comparison"))
    assert set(headers[1:]) == set(TECHNOLOGIES)
    # DRAM is the only volatile technology in the table.
    volatile_row = next(row for row in rows if row[0] == "volatile")
    assert volatile_row[1 + list(TECHNOLOGIES).index("DRAM")] == "True"
    # Wear: the same store count consumes 100x more of RRAM's
    # endurance than PCM's.
    stores = 10 ** 6
    pcm = wear_fraction(stores, TECHNOLOGIES["PCM"].endurance_writes)
    rram = wear_fraction(stores, TECHNOLOGIES["RRAM"].endurance_writes)
    assert rram / pcm == 100
