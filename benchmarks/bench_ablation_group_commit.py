"""Ablation — group commit batch size.

The traditional engines batch log flushes / directory flips to
amortize durable-storage costs (Sections 3.1-3.2); the NVM-InP engine
persists immediately and should be insensitive. This ablation sweeps
the batch size on a write-heavy workload.
"""

from repro.analysis.tables import format_table
from repro.harness.runner import run
from repro.harness.spec import ExperimentSpec

BATCHES = (1, 4, 16, 64)


def _run(scale):
    rows = []
    for engine in ("inp", "cow", "nvm-inp"):
        row = [engine]
        for batch in BATCHES:
            result = run(ExperimentSpec.ycsb(
                engine, "write-heavy", "low",
                num_tuples=scale.ycsb_tuples,
                num_txns=scale.ycsb_txns,
                engine_config=scale.engine_config(
                    group_commit_size=batch),
                cache_bytes=scale.cache_bytes))
            row.append(result.throughput)
        rows.append(row)
    headers = ["engine", *[f"batch={batch}" for batch in BATCHES]]
    return headers, rows


def test_ablation_group_commit(benchmark, report, scale):
    headers, rows = benchmark.pedantic(
        _run, args=(scale,), rounds=1, iterations=1)
    report("ablation group commit",
           format_table(headers, rows,
                        title="Ablation — group commit batch size "
                              "(YCSB write-heavy/low, txn/s)"))
    by_engine = {row[0]: row[1:] for row in rows}
    # Batching helps the engines that defer durability...
    assert by_engine["inp"][-1] > by_engine["inp"][0]
    assert by_engine["cow"][-1] > by_engine["cow"][0] * 0.9
    # ...and NVM-InP, which persists per-operation, barely moves.
    spread = max(by_engine["nvm-inp"]) / min(by_engine["nvm-inp"])
    assert spread < 1.2
