"""Fig. 8 — TPC-C throughput under all three latency configurations.

Expected shape (Section 5.2): NVM-InP performs best; every NVM-aware
engine is 1.7-2.3x its traditional counterpart (the workload is
write-intensive); speedups are smaller than YCSB's because TPC-C
transactions carry more program logic per transaction.
"""

from repro.analysis.tables import format_table
from repro.harness.experiments import tpcc_throughput


def test_fig08_tpcc_throughput(benchmark, report, scale):
    headers, rows, __ = benchmark.pedantic(
        tpcc_throughput, args=(scale,), rounds=1, iterations=1)
    report("fig08 tpcc",
           format_table(headers, rows,
                        title="Fig. 8 — TPC-C throughput (txn/s)"))
    for latency in ("dram", "low-nvm"):
        index = headers.index(latency)
        by_engine = {row[0]: row[index] for row in rows}
        assert by_engine["nvm-inp"] > by_engine["inp"], latency
        assert by_engine["nvm-cow"] > by_engine["cow"], latency
        assert by_engine["nvm-log"] > by_engine["log"], latency
        assert max(by_engine.values()) == by_engine["nvm-inp"], latency
    # High latency (8x): the NVM-aware engines pay a CLFLUSH
    # re-read tax on the scaled-down hot rows that the paper's much
    # larger uncached working set amortizes (deviation documented in
    # EXPERIMENTS.md) — they must stay within ~15% of their
    # counterparts and still clearly beat CoW/Log.
    index = headers.index("high-nvm")
    by_engine = {row[0]: row[index] for row in rows}
    assert by_engine["nvm-inp"] > 0.85 * by_engine["inp"]
    assert by_engine["nvm-cow"] > by_engine["cow"]
    assert by_engine["nvm-log"] > 0.85 * by_engine["log"]
    # Throughput decreases with NVM latency for every engine.
    dram_index = headers.index("dram")
    high_index = headers.index("high-nvm")
    for row in rows:
        assert row[dram_index] > row[high_index]
