"""Fig. 13 — execution time breakdown by engine component.

Expected shape (Section 5.5): on the write-heavy mixture the NVM-aware
engines spend a much smaller share of time on recovery-related tasks
(logging / dirty-directory persistence) than the traditional engines;
the recovery share grows as the mixture becomes write-intensive; the
Log engines spend a larger share on index accesses (LSM look-ups).
"""

from repro.analysis.tables import format_table
from repro.harness.experiments import time_breakdown


def test_fig13_execution_breakdown(benchmark, report, scale):
    figures = benchmark.pedantic(
        time_breakdown, args=(scale,), rounds=1, iterations=1)
    for mixture, (headers, rows) in figures.items():
        report(f"fig13 breakdown {mixture}",
               format_table(headers, rows,
                            title=f"Fig. 13 — time breakdown, "
                                  f"{mixture} (%)"))

    def share(mixture, engine, component):
        headers, rows = figures[mixture]
        index = headers.index(f"{component} %")
        for row in rows:
            if row[0] == engine:
                return row[index]
        raise KeyError(engine)

    # Write-heavy: traditional logging engines spend a larger share on
    # recovery mechanisms than their NVM-aware counterparts.
    assert share("write-heavy", "inp", "recovery") \
        > share("write-heavy", "nvm-inp", "recovery")
    assert share("write-heavy", "log", "recovery") \
        > share("write-heavy", "nvm-log", "recovery")
    # Recovery share increases as the workload becomes write-heavy.
    for engine in ("inp", "log"):
        assert share("write-heavy", engine, "recovery") \
            > share("read-heavy", engine, "recovery")
    # Log engines spend a larger index share than InP (LSM look-ups).
    assert share("balanced", "log", "index") \
        > share("balanced", "inp", "index") * 0.8
    # Fractions sum to ~100.
    for mixture, (headers, rows) in figures.items():
        for row in rows:
            assert abs(sum(row[1:]) - 100.0) < 1.0
