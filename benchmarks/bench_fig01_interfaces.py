"""Fig. 1 — durable write bandwidth: allocator vs filesystem interface.

The paper's microbenchmark (Section 2.2): an application performs
durable writes of 1-256 byte chunks through each interface, sequential
and random. Expected shape: the NVM-aware allocator delivers ~10-12x
the filesystem's bandwidth, most prominently for small sequential
chunks, and the sequential/random gap is small.
"""

from repro.analysis.tables import format_table
from repro.harness.experiments import fig1_interfaces


def test_fig01_interface_bandwidth(benchmark, report):
    headers, rows = benchmark.pedantic(
        fig1_interfaces, rounds=1, iterations=1)
    report("fig01 interfaces",
           format_table(headers, rows,
                        title="Fig. 1 — durable write bandwidth (MB/s)"))
    by_chunk = {row[0]: row for row in rows}
    # Allocator beats the filesystem at every chunk size...
    for row in rows:
        assert row[1] > row[2], f"allocator slower at chunk {row[0]}"
        assert row[3] > row[4]
    # ...by an order of magnitude for small chunks...
    assert by_chunk[1][5] > 8
    assert by_chunk[8][5] > 8
    # ...and the gap narrows as chunks grow.
    assert by_chunk[256][5] < by_chunk[8][5]
    # Sequential vs random gap is small (byte-addressable NVM).
    for row in rows:
        assert row[3] >= row[1] * 0.5
