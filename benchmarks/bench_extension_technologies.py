"""Extension — per-technology latency profiles (Table 1).

The hardware emulator's latency knob "enables us to evaluate multiple
hardware profiles that are not specific to a particular NVM
technology" (Section 2.2). This extension runs the NVM-InP engine
under latency profiles derived from Table 1's actual technologies:
STT-MRAM (20 ns — "expected to deliver lower read and write latencies
than DRAM", Section 1), PCM (50/150 ns), and RRAM (100 ns).
"""

from repro.analysis.tables import format_table
from repro.harness.runner import run
from repro.harness.spec import ExperimentSpec
from repro.nvm.constants import TECHNOLOGIES

PROFILES = ("MRAM", "PCM", "RRAM")


def _run(scale):
    rows = []
    for technology in PROFILES:
        profile = TECHNOLOGIES[technology].latency_profile()
        row = [technology]
        for mixture in ("read-heavy", "write-heavy"):
            result = run(ExperimentSpec.ycsb(
                "nvm-inp", mixture, "low", latency=profile,
                num_tuples=scale.ycsb_tuples,
                num_txns=scale.ycsb_txns,
                engine_config=scale.engine_config(),
                cache_bytes=scale.cache_bytes))
            row.append(result.throughput)
        rows.append(row)
    return ["technology", "read-heavy", "write-heavy"], rows


def test_extension_technologies(benchmark, report, scale):
    headers, rows = benchmark.pedantic(
        _run, args=(scale,), rounds=1, iterations=1)
    report("extension technologies",
           format_table(headers, rows,
                        title="Extension — NVM-InP across Table 1 "
                              "technologies (txn/s)"))
    by_technology = {row[0]: row[1:] for row in rows}
    # Faster technologies yield higher throughput, in Table 1's order.
    assert by_technology["MRAM"][0] > by_technology["PCM"][0]
    assert by_technology["PCM"][0] > by_technology["RRAM"][0]
    assert by_technology["MRAM"][1] > by_technology["RRAM"][1]
