"""Table 3 / Appendix A — analytical cost model vs measured writes.

The appendix derives closed-form estimates of the data written to NVM
per insert/update/delete for each engine. This benchmark prints the
analytical table for the YCSB tuple geometry and measures the actual
bytes stored per operation on the simulator, checking the model's
ordering claims: the NVM-aware engines write less per operation than
their traditional counterparts because they log pointers (p) instead
of tuple images (T).
"""

from repro.analysis.cost_model import CostModelParams, engine_cost
from repro.analysis.tables import format_table
from repro.core.database import Database
from repro.config import CacheConfig, PlatformConfig
from repro.engines.base import ENGINE_NAMES
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

#: YCSB geometry: ~1.1 KB inlined tuple, updates touch one 100 B
#: field; the paper's 4 KB CoW node (the model's B >> T assumption).
PARAMS = CostModelParams(tuple_size=1132, fixed_field_size=0,
                         varlen_field_size=100, cow_node_size=4096)


def _measured_bytes_per_op(scale):
    """Bytes stored to NVM per insert / update / delete, per engine."""
    rows = []
    for engine in ENGINE_NAMES.ALL:
        config = scale.engine_config(group_commit_size=1)
        platform_config = PlatformConfig(
            cache=CacheConfig(capacity_bytes=scale.cache_bytes), seed=3)
        db = Database(engine=engine, platform_config=platform_config,
                      engine_config=config, seed=3)
        workload = YCSBWorkload(YCSBConfig(num_tuples=400, seed=3))
        workload.load(db)
        db.settle()
        device = db.partitions[0].platform.device
        table = workload.TABLE

        def measure(operation, count=100):
            db.settle()
            before = device.bytes_stored
            for i in range(count):
                operation(i)
            db.flush()
            db.settle()
            return (device.bytes_stored - before) / count

        inserts = measure(lambda i: db.insert(
            table, workload.make_tuple(1000 + i), partition=0))
        updates = measure(lambda i: db.update(
            table, i, {"field0": "u" * 100}, partition=0))
        deletes = measure(lambda i: db.delete(table, i, partition=0))
        rows.append([engine, inserts, updates, deletes])
    return ["engine", "insert (B)", "update (B)", "delete (B)"], rows


def _model_table():
    headers = ["engine", "insert (B)", "update (B)", "delete (B)"]
    rows = []
    for engine in ENGINE_NAMES.ALL:
        rows.append([engine,
                     engine_cost(engine, "insert", PARAMS).total,
                     engine_cost(engine, "update", PARAMS).total,
                     engine_cost(engine, "delete", PARAMS).total])
    return headers, rows


def test_table3_cost_model(benchmark, report, scale):
    measured_headers, measured = benchmark.pedantic(
        _measured_bytes_per_op, args=(scale,), rounds=1, iterations=1)
    model_headers, model = _model_table()
    report("table3 model",
           format_table(model_headers, model,
                        title="Table 3 — analytical bytes written/op "
                              "(YCSB geometry)"))
    report("table3 measured",
           format_table(measured_headers, measured,
                        title="Table 3 — measured bytes stored/op"))

    model_by = {row[0]: row for row in model}
    measured_by = {row[0]: row for row in measured}

    # Model: NVM-aware engines write less per op than traditional.
    for op_index in (1, 2, 3):
        for traditional, nvm in ENGINE_NAMES.COUNTERPART.items():
            assert model_by[nvm][op_index] \
                <= model_by[traditional][op_index]

    # Measured inserts follow the model's ordering for the in-place
    # and copy-on-write pairs (pointer vs tuple-image logging).
    assert measured_by["nvm-inp"][1] < measured_by["inp"][1]
    assert measured_by["nvm-cow"][1] < measured_by["cow"][1]
    # CoW writes the most per update (page copies, Table 3's B terms).
    assert measured_by["cow"][2] == max(row[2] for row in measured)
    # Deletes are cheap everywhere compared to inserts.
    for row in measured:
        assert row[3] < row[1]
