"""Fig. 14 — storage footprint on NVM by engine component.

Expected shape (Section 5.6): the CoW engine has the largest footprint
(dirty-directory copies + page cache duplication); the NVM-aware
engines are smaller than their traditional counterparts because they
log pointers instead of tuple images and keep no duplicated caches.
"""

from repro.analysis.tables import format_table
from repro.harness.experiments import storage_footprint


def test_fig14a_ycsb_footprint(benchmark, report, scale):
    headers, rows = benchmark.pedantic(
        storage_footprint, args=("ycsb", scale), rounds=1, iterations=1)
    report("fig14a footprint ycsb",
           format_table(headers, rows,
                        title="Fig. 14a — YCSB storage footprint (KB)"))
    total = {row[0]: row[-1] for row in rows}
    assert total["cow"] == max(total.values())
    assert total["nvm-inp"] < total["inp"]
    assert total["nvm-cow"] < total["cow"]
    assert total["nvm-log"] < total["log"] * 1.25
    # The InP/Log engines carry logs (and InP checkpoints); the
    # NVM-aware engines' logs are pointer-sized or truncated.
    log_kb = {row[0]: row[headers.index("log (KB)")] for row in rows}
    assert log_kb["inp"] > log_kb["nvm-inp"]
    assert log_kb["log"] > log_kb["nvm-log"]
    assert log_kb["cow"] == 0
    assert log_kb["nvm-cow"] == 0


def test_fig14b_tpcc_footprint(benchmark, report, scale):
    headers, rows = benchmark.pedantic(
        storage_footprint, args=("tpcc", scale), rounds=1, iterations=1)
    report("fig14b footprint tpcc",
           format_table(headers, rows,
                        title="Fig. 14b — TPC-C storage footprint (KB)"))
    total = {row[0]: row[-1] for row in rows}
    assert total["nvm-inp"] < total["inp"]
    assert total["nvm-cow"] < total["cow"]
