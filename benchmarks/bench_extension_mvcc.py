"""Extension — SOFORT-style MVCC engine vs the paper's NVM-InP.

Section 6 discusses SOFORT [51]: a logging-free MVCC engine for NVM.
This extension measures our implementation of that design point against
NVM-InP: versioned updates write more bytes per update (a full version
copy instead of changed fields), but commit is a single durable word
and the in-flight registry never holds images.
"""

from repro.analysis.tables import format_table
from repro.harness.runner import run
from repro.harness.spec import ExperimentSpec


def _run(scale):
    rows = []
    for engine in ("nvm-inp", "nvm-mvcc"):
        row = [engine]
        for mixture in ("read-heavy", "write-heavy"):
            result = run(ExperimentSpec.ycsb(
                engine, mixture, "low",
                num_tuples=scale.ycsb_tuples,
                num_txns=scale.ycsb_txns,
                engine_config=scale.engine_config(),
                cache_bytes=scale.cache_bytes))
            row.append(result.throughput)
            if mixture == "write-heavy":
                row.append(result.nvm_stores)
        rows.append(row)
    return ["engine", "read-heavy txn/s", "write-heavy txn/s",
            "write-heavy stores"], rows


def test_extension_mvcc(benchmark, report, scale):
    headers, rows = benchmark.pedantic(
        _run, args=(scale,), rounds=1, iterations=1)
    report("extension mvcc",
           format_table(headers, rows,
                        title="Extension — SOFORT-style MVCC vs "
                              "NVM-InP (YCSB, txn/s)"))
    by_engine = {row[0]: row[1:] for row in rows}
    # Reads are equivalent (same index + slot read path)...
    assert by_engine["nvm-mvcc"][0] > 0.7 * by_engine["nvm-inp"][0]
    # ...writes pay the version-copy tax: more stores per update.
    assert by_engine["nvm-mvcc"][2] > by_engine["nvm-inp"][2]
    # But the MVCC engine stays within the NVM-aware performance class.
    assert by_engine["nvm-mvcc"][1] > 0.3 * by_engine["nvm-inp"][1]
