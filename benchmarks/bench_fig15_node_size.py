"""Fig. 15 / Appendix B — B+tree node size sensitivity.

Expected shape: the effect of node size is more significant for the
copy-on-write B+tree (NVM-CoW) than for the STX B+tree engines; larger
CoW nodes help read-heavy workloads (shallower tree, less indirection)
but hurt write-heavy ones (more copying per update).
"""

from repro.analysis.tables import format_table
from repro.harness.experiments import node_size_sensitivity


def test_fig15_node_size(benchmark, report, scale):
    figures = benchmark.pedantic(
        node_size_sensitivity, args=(scale,), rounds=1, iterations=1)
    for engine, (headers, rows) in figures.items():
        report(f"fig15 node size {engine}",
               format_table(headers, rows,
                            title=f"Fig. 15 — node size sweep, "
                                  f"{engine} (txn/s)"))

    def spread(engine, mixture):
        headers, rows = figures[engine]
        index = headers.index(mixture)
        values = [row[index] for row in rows]
        return max(values) / min(values)

    # The CoW B+tree is more sensitive to node size than the STX trees.
    assert spread("nvm-cow", "write-heavy") > 1.15
    # Every configuration still completes with sane throughput.
    for engine, (headers, rows) in figures.items():
        for row in rows:
            assert all(value > 0 for value in row[1:])
