"""Shared infrastructure for the figure/table benchmarks.

Each benchmark regenerates one table or figure from the paper's
evaluation (Section 5) and registers a plain-text table that is printed
in the terminal summary (and written to ``benchmarks/results/``), so
``pytest benchmarks/ --benchmark-only`` produces the full paper-style
report. Set ``REPRO_BENCH_PROFILE=full`` for larger workloads.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, List

import pytest

from repro.harness.experiments import FULL_SCALE, QUICK_SCALE, Scale

_REPORTS: Dict[str, str] = {}
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def register_report(name: str, text: str) -> None:
    """Record a figure's rendered table for the terminal summary."""
    _REPORTS[name] = text
    _RESULTS_DIR.mkdir(exist_ok=True)
    safe = name.replace("/", "_").replace(" ", "_")
    (_RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def scale() -> Scale:
    profile = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    return FULL_SCALE if profile == "full" else QUICK_SCALE


@pytest.fixture
def report():
    return register_report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper figure reproductions")
    for name in sorted(_REPORTS):
        terminalreporter.write_line("")
        terminalreporter.write_line(_REPORTS[name])
