"""Fig. 16 / Appendix C — sync primitive latency sensitivity.

The appendix emulates the proposed PCOMMIT/CLWB instruction set
extensions by varying the latency of the durable sync primitive from
10 ns to 10 us. Expected shape: throughput of every NVM-aware engine
drops as sync latency grows, the impact is strongest on write-heavy
mixtures, and NVM-CoW is the least sensitive (it syncs per batch, not
per operation).
"""

from repro.analysis.tables import format_table
from repro.harness.experiments import sync_latency_sensitivity


def test_fig16_sync_latency(benchmark, report, scale):
    figures = benchmark.pedantic(
        sync_latency_sensitivity, args=(scale,), rounds=1, iterations=1)
    for engine, (headers, rows) in figures.items():
        report(f"fig16 sync latency {engine}",
               format_table(headers, rows,
                            title=f"Fig. 16 — sync latency sweep, "
                                  f"{engine} (txn/s)"))

    def series(engine, mixture):
        headers, rows = figures[engine]
        index = headers.index(mixture)
        return [row[index] for row in rows]

    for engine in figures:
        write_heavy = series(engine, "write-heavy")
        # Throughput decreases monotonically (within noise) with sync
        # latency and collapses at 10 us.
        assert write_heavy[0] > write_heavy[-1]
        assert write_heavy[-1] < write_heavy[0] * 0.7, engine
    # Write-heavy suffers more than read-heavy (more syncs per txn).
    for engine in ("nvm-inp", "nvm-log"):
        wh_drop = series(engine, "write-heavy")[0] \
            / series(engine, "write-heavy")[-1]
        rh_drop = series(engine, "read-heavy")[0] \
            / series(engine, "read-heavy")[-1]
        assert wh_drop > rh_drop * 0.9
    # Every engine is heavily degraded by a 10 us primitive — the
    # appendix's conclusion that efficient hardware support (PCOMMIT/
    # CLWB) is required for NVM-aware DBMSs.
    for engine in figures:
        drop = series(engine, "write-heavy")[0] \
            / series(engine, "write-heavy")[-1]
        assert drop > 2.0, engine
