"""Fig. 7 — YCSB throughput at the high NVM latency configuration (8x).

With 1280 ns NVM reads the NVM-aware engines still win, and the paper
notes throughput decreases *sub-linearly* with latency: an 8x latency
increase costs only 2-3.4x throughput on read-heavy mixtures and
1.8-2.9x on write-intensive ones (caching and memory-level
parallelism). This benchmark checks that sub-linearity against the
Fig. 5 run.
"""

from repro.analysis.tables import format_table
from repro.harness.experiments import ycsb_throughput


def test_fig07_ycsb_high_nvm_latency(benchmark, report, scale):
    headers, rows, __ = benchmark.pedantic(
        ycsb_throughput, args=("high-nvm", scale), rounds=1,
        iterations=1)
    report("fig07 ycsb high-nvm",
           format_table(headers, rows,
                        title="Fig. 7 — YCSB throughput, high NVM "
                              "latency 8x (txn/s)"))
    __h, dram_rows, __r = ycsb_throughput(
        "dram", scale, mixtures=("read-only", "write-heavy"),
        skews=("low",))
    dram = {row[0]: row for row in dram_rows}
    high = {row[0]: row for row in rows}
    ro_index = headers.index("read-only/low")
    wh_index = headers.index("write-heavy/low")
    for engine, row in high.items():
        # 8x latency must not cost anywhere near 8x throughput.
        drop_ro = dram[engine][1] / row[ro_index]
        drop_wh = dram[engine][2] / row[wh_index]
        assert drop_ro < 6.0, f"{engine}: read drop {drop_ro:.1f}x"
        assert drop_wh < 6.0, f"{engine}: write drop {drop_wh:.1f}x"
        # Write-intensive mixtures drop less than read-only ones.
        assert drop_wh < drop_ro * 1.6
    by_engine = {row[0]: row[wh_index] for row in rows}
    assert by_engine["nvm-inp"] > by_engine["inp"]
    assert by_engine["nvm-cow"] > by_engine["cow"]
    # The log pair converges at 8x latency at simulator scale: the
    # CLFLUSH re-read tax on synced MemTable entries grows with read
    # latency while the traditional Log engine's MemTable stays cached
    # at this dataset size (deviation noted in EXPERIMENTS.md).
    assert by_engine["nvm-log"] > 0.85 * by_engine["log"]
