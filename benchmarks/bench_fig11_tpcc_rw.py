"""Fig. 11 — NVM loads and stores while running TPC-C.

Expected shape (Section 5.3): the NVM-aware engines perform ~31-42%
fewer stores than the traditional engines (write-intensive workload,
pointer-sized logging); the Log engine's store count is inflated by
its additional index maintenance.
"""

from repro.analysis.tables import format_table
from repro.harness.experiments import tpcc_throughput


def test_fig11_tpcc_reads_writes(benchmark, report, scale):
    __, __rows, results = benchmark.pedantic(
        tpcc_throughput, args=(scale, ("dram",)), rounds=1,
        iterations=1)
    headers = ["engine", "NVM loads", "NVM stores"]
    rows = []
    for engine in ("inp", "cow", "log", "nvm-inp", "nvm-cow",
                   "nvm-log"):
        result = results[(engine, "dram")]
        rows.append([engine, result.nvm_loads, result.nvm_stores])
    report("fig11 tpcc rw",
           format_table(headers, rows,
                        title="Fig. 11 — TPC-C NVM loads & stores "
                              "(cachelines)"))
    by_engine = {row[0]: (row[1], row[2]) for row in rows}
    # NVM-aware engines hold store counts at or below their
    # traditional counterparts (NVM-InP's per-operation sync overhead
    # at TPC-C's ~150-byte rows keeps it within ~30% at this scale —
    # deviation note in EXPERIMENTS.md).
    assert by_engine["nvm-inp"][1] < by_engine["inp"][1] * 1.3
    assert by_engine["nvm-cow"][1] < by_engine["cow"][1]
    assert by_engine["nvm-log"][1] < by_engine["log"][1]
    # CoW writes the most (whole-tuple + page copies).
    assert by_engine["cow"][1] == max(v[1] for v in by_engine.values())
