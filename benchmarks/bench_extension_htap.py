"""Extension — hybrid OLTP + OLAP workload (Appendix D).

"We are interested in exploring methods for supporting hybrid
workloads (i.e., OLTP + OLAP) on NVM." This extension mixes analytical
range aggregates into the OLTP stream and compares the engines: the
in-place engines scan well; the log-structured engines pay tuple
coalescing for every scanned tuple.
"""

from repro.analysis.tables import format_table
from repro.config import CacheConfig, PlatformConfig
from repro.core.database import Database
from repro.engines.base import ENGINE_NAMES
from repro.workloads.htap import HTAPConfig, HTAPWorkload


def _run(scale):
    rows = []
    for engine in ENGINE_NAMES.ALL:
        config = HTAPConfig(num_tuples=scale.ycsb_tuples,
                            scan_fraction=0.05, seed=53)
        workload = HTAPWorkload(config)
        platform_config = PlatformConfig(
            cache=CacheConfig(capacity_bytes=scale.cache_bytes),
            seed=53)
        db = Database(engine=engine, platform_config=platform_config,
                      engine_config=scale.engine_config(), seed=53)
        workload.load(db)
        db.settle()
        start_ns = db.now_ns
        counts = workload.run(db, scale.ycsb_txns)
        elapsed = (db.now_ns - start_ns) / 1e9
        rows.append([engine, scale.ycsb_txns / elapsed,
                     counts["scan"]])
    return ["engine", "txn/s", "scans executed"], rows


def test_extension_htap(benchmark, report, scale):
    headers, rows = benchmark.pedantic(
        _run, args=(scale,), rounds=1, iterations=1)
    report("extension htap",
           format_table(headers, rows,
                        title="Extension — HTAP mixture "
                              "(5% analytical scans, txn/s)"))
    by_engine = {row[0]: row[1] for row in rows}
    # The in-place engines handle the hybrid mixture best; the
    # log-structured engines pay coalescing on every scanned tuple.
    assert by_engine["nvm-inp"] > by_engine["nvm-log"]
    assert by_engine["inp"] > by_engine["log"]
